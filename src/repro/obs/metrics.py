"""Zero-dependency metrics: counters, gauges, histograms, registries.

The simulator is grown toward a service that runs many audits per second,
so its instrumentation follows the shape of a production metrics stack —
a :class:`MetricsRegistry` of named :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments with a Prometheus-style text exposition —
without taking any dependency.

Two properties matter more than features:

* **Disabled overhead is ~zero.**  The process-global default registry is
  a :class:`NullRegistry` whose instruments are shared no-op singletons,
  so ``get_registry().counter("x").inc()`` on an un-instrumented process
  is two attribute lookups and an empty method call.  Call
  :func:`enable_metrics` (or :func:`set_registry`) to start collecting.
* **Observation never perturbs the observed.**  No instrument touches the
  virtual clock, any RNG, or any simulated state; enabling metrics must
  leave cycle counts bit-identical (asserted by the determinism guard
  tests).
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left

from repro.errors import ObservabilityError

#: Default histogram buckets — wide enough for cycle counts and small
#: enough for ratios; callers with specific ranges pass their own.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter '{self.name}' cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics).

    Internally each bucket holds only its *own* tally (one increment per
    observe, found by bisection); the cumulative ``le`` view is summed at
    read time.  The snapshot wire format stays cumulative, so stored runs
    from before this representation load unchanged.
    """

    __slots__ = ("name", "help", "buckets", "_bucket_counts", "_count",
                 "_sum", "_min", "_max")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram '{name}' buckets must be sorted and non-empty")
        self.buckets = bounds
        #: Per-bucket (non-cumulative) tallies; values above the last
        #: bound land only in count/sum (the ``+Inf`` bucket).
        self._bucket_counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        idx = bisect_left(self.buckets, value)
        if idx < len(self.buckets):
            self._bucket_counts[idx] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative count per upper bound (``le`` buckets)."""
        out, running = {}, 0
        for bound, count in zip(self.buckets, self._bucket_counts):
            running += count
            out[bound] = running
        return out

    def cumulative_counts(self) -> list[int]:
        """Cumulative tallies in bucket order (the snapshot wire format)."""
        running, out = 0, []
        for count in self._bucket_counts:
            running += count
            out.append(running)
        return out

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another histogram's :meth:`MetricsRegistry.snapshot` entry
        into this one (bucket layouts must match).  Snapshots carry
        cumulative counts; they are de-accumulated into the per-bucket
        internal representation here."""
        if tuple(snap["buckets"]) != self.buckets:
            raise ObservabilityError(
                f"histogram '{self.name}' bucket mismatch on merge: "
                f"{self.buckets} vs {tuple(snap['buckets'])}")
        previous = 0
        for i, cumulative in enumerate(snap["bucket_counts"]):
            self._bucket_counts[i] += cumulative - previous
            previous = cumulative
        self._count += snap["count"]
        self._sum += snap["sum"]
        if snap["min"] is not None:
            self._min = snap["min"] if self._min is None \
                else min(self._min, snap["min"])
        if snap["max"] is not None:
            self._max = snap["max"] if self._max is None \
                else max(self._max, snap["max"])


class _NullInstrument:
    """Shared no-op instrument returned by the :class:`NullRegistry`.

    Implements the union of the Counter/Gauge/Histogram write interfaces
    so call sites never need to check whether metrics are enabled.
    """

    __slots__ = ()
    name = "<null>"
    help = ""
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> dict[float, int]:
        return {}


NULL_INSTRUMENT = _NullInstrument()

#: Shared empty snapshot handed out by :class:`NullRegistry` — a module
#: singleton so the disabled fast path allocates nothing per call.
EMPTY_SNAPSHOT: dict = {}


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Thread-safe on the create path (the simulator itself is single
    threaded, but audits may be served from a thread pool); instrument
    writes are plain attribute updates, safe under the GIL for the
    increment-only usage here.
    """

    #: Whether instruments returned by this registry actually record.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObservabilityError(
                        f"metric '{name}' already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}")
                return existing
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return self._get_or_create(name, Histogram, help=help,
                                   buckets=buckets)

    def collect(self) -> dict[str, float]:
        """Flat snapshot: counter/gauge values, histogram count+sum."""
        out: dict[str, float] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Histogram):
                out[f"{name}_count"] = float(inst.count)
                out[f"{name}_sum"] = inst.sum
            else:
                out[name] = inst.value
        return out

    def snapshot(self) -> dict[str, dict]:
        """Full picklable/JSON-able state of every instrument.

        Unlike :meth:`collect` (a flat numeric view) this preserves
        instrument kind, help text, and histogram bucket layout, so a
        registry rebuilt via :meth:`merge_snapshot` renders the same
        exposition.  The order is the sorted instrument-name order, which
        makes snapshots directly comparable across processes.
        """
        out: dict[str, dict] = {}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out[name] = {"kind": "counter", "help": inst.help,
                             "value": inst.value}
            elif isinstance(inst, Gauge):
                out[name] = {"kind": "gauge", "help": inst.help,
                             "value": inst.value}
            else:
                out[name] = {"kind": "histogram", "help": inst.help,
                             "buckets": list(inst.buckets),
                             "bucket_counts": inst.cumulative_counts(),
                             "count": inst.count, "sum": inst.sum,
                             "min": inst.min, "max": inst.max}
        return out

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram tallies *add*; gauges take the snapshot's
        value (last-merge-wins).  Merging worker snapshots in submission
        order therefore reproduces exactly what a serial run accumulating
        into one registry would hold — counter increments and the cycle
        histograms are integer-valued, so even the float sums are
        bit-identical regardless of how work was split across processes.
        """
        for name, snap in snapshot.items():
            kind = snap["kind"]
            if kind == "counter":
                self.counter(name, help=snap["help"]).inc(snap["value"])
            elif kind == "gauge":
                self.gauge(name, help=snap["help"]).set(snap["value"])
            elif kind == "histogram":
                self.histogram(
                    name, help=snap["help"],
                    buckets=tuple(snap["buckets"])).merge_snapshot(snap)
            else:
                raise ObservabilityError(
                    f"unknown instrument kind '{kind}' for '{name}'")

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument.

        Labelled series (instruments named via :func:`labeled`) render
        with their labels merged into each sample's label set —
        histogram suffixes go on the *base* name, so a
        ``labeled("x", node="n")`` histogram exposes
        ``x_bucket{le="...",node="n"}``, never the invalid
        ``x{node="n"}_bucket{...}``.  HELP/TYPE headers are emitted once
        per metric family, not once per labelled series.
        """
        lines: list[str] = []
        described: set[str] = set()

        def _sample(base: str, suffix: str, inner: str,
                    extra: str = "") -> str:
            label_set = ",".join(part for part in (inner, extra) if part)
            return (f"{base}{suffix}{{{label_set}}}" if label_set
                    else f"{base}{suffix}")

        for name, inst in sorted(self._instruments.items()):
            base, inner = split_series(name)
            if base not in described:
                described.add(base)
                if inst.help:
                    lines.append(f"# HELP {base} {inst.help}")
                kind = ("counter" if isinstance(inst, Counter) else
                        "gauge" if isinstance(inst, Gauge) else "histogram")
                lines.append(f"# TYPE {base} {kind}")
            if isinstance(inst, (Counter, Gauge)):
                lines.append(f"{_sample(base, '', inner)} {inst.value:g}")
            else:
                for bound, count in inst.bucket_counts().items():
                    le = f'le="{bound:g}"'
                    lines.append(
                        f"{_sample(base, '_bucket', inner, le)} {count}")
                inf = 'le="+Inf"'
                lines.append(
                    f"{_sample(base, '_bucket', inner, inf)} {inst.count}")
                lines.append(f"{_sample(base, '_sum', inner)} {inst.sum:g}")
                lines.append(f"{_sample(base, '_count', inner)} "
                             f"{inst.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._instruments)


class NullRegistry(MetricsRegistry):
    """A registry whose instruments drop everything (the default)."""

    enabled = False

    def __init__(self) -> None:  # no lock, no dict — nothing is stored
        pass

    def counter(self, name: str, help: str = "") -> Counter:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def collect(self) -> dict[str, float]:
        return {}

    def snapshot(self) -> dict[str, dict]:
        # The shared singleton keeps the disabled path allocation-free.
        return EMPTY_SNAPSHOT

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        pass

    def render(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global default registry (null until enabled)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process default; returns the previous."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable_metrics() -> MetricsRegistry:
    """Replace a null default with a recording registry (idempotent)."""
    if not _default_registry.enabled:
        set_registry(MetricsRegistry())
    return _default_registry


#: Prometheus label-name grammar ([a-zA-Z_][a-zA-Z0-9_]*).
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text format (backslash,
    double quote, and newline are the only characters that need it)."""
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def labeled(name: str, **labels: object) -> str:
    """Render a Prometheus-style series name with sorted label pairs.

    The registry keys instruments by their full name string, so labelled
    series are just distinct names — ``labeled("cache_hits_total",
    node="node-03")`` yields ``cache_hits_total{node="node-03"}``.
    Labels are sorted for a canonical spelling; values are rendered with
    ``str()`` and escaped per the exposition format (backslash, quote,
    newline), and label names must match the Prometheus grammar.
    """
    if not labels:
        return name
    for key in labels:
        if not _LABEL_NAME.match(key):
            raise ObservabilityError(
                f"invalid label name '{key}' for series '{name}'")
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def split_series(name: str) -> tuple[str, str]:
    """Split a :func:`labeled` series name into ``(base, label_pairs)``.

    ``split_series('x{node="n"}')`` is ``("x", 'node="n"')``; an
    unlabelled name comes back as ``(name, "")``.
    """
    if name.endswith("}") and "{" in name:
        base, _, rest = name.partition("{")
        return base, rest[:-1]
    return name, ""


class time_phase:
    """Record the wall-clock duration of a named pipeline phase.

    ::

        with time_phase("chaos.baseline", registry) as span:
            baseline = play(...)
        print(span.seconds)

    The duration lands in a ``phase_<name>_seconds`` histogram on the
    given (or process-global) registry.  Host wall-clock only — the
    virtual clock and all simulated state stay untouched, so timing a
    phase can never perturb its results.
    """

    __slots__ = ("name", "registry", "seconds", "_t0")

    def __init__(self, name: str,
                 registry: MetricsRegistry | None = None) -> None:
        self.name = name
        self.registry = registry if registry is not None else get_registry()
        self.seconds = 0.0

    def __enter__(self) -> "time_phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._t0
        self.registry.histogram(
            f"phase_{self.name}_seconds",
            help=f"wall-clock seconds spent in the '{self.name}' phase",
        ).observe(self.seconds)
        return False


def phase_report(registry: MetricsRegistry | None = None
                 ) -> list[tuple[str, int, float]]:
    """``(phase, runs, total_seconds)`` rows for every timed phase."""
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return []
    rows = []
    for name, inst in sorted(registry._instruments.items()):
        if (name.startswith("phase_") and name.endswith("_seconds")
                and isinstance(inst, Histogram)):
            rows.append((name[len("phase_"):-len("_seconds")],
                         inst.count, inst.sum))
    return rows

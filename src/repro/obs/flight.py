"""The divergence flight recorder.

When an audit finds play/replay divergence — mismatched payloads, an IPD
deviation beyond the replay-accuracy bound, or a replay that could not
follow the log — the interesting question is *where the cycles went
differently*.  The flight recorder answers it from the two runs'
cycle-attribution ledgers and transmission traces: the last N
transmissions of each side, the first mismatching packet, and the
per-source cycle deltas between the runs.

A covert timing channel has a tell-tale signature here: the play run
carries a positive ``covert`` delta that the replay (on a clean machine)
does not reproduce — the programmatic version of §5.3's "the packet
timing during replay is what the timing *ought* to have been".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def _tail_events(result, last_n: int) -> list[tuple[int, str]]:
    """(cycle, payload preview) for the last ``last_n`` transmissions."""
    tail = []
    for cycle, payload in result.tx[-last_n:]:
        preview = payload[:8].hex()
        if len(payload) > 8:
            preview += f"..+{len(payload) - 8}B"
        tail.append((cycle, preview))
    return tail


@dataclass
class DivergenceRecord:
    """What the flight recorder captured about one divergent audit."""

    reason: str
    #: Last-N (cycle, payload preview) transmissions of each run.
    play_tail: list[tuple[int, str]] = field(default_factory=list)
    replay_tail: list[tuple[int, str]] = field(default_factory=list)
    #: Per-source play-minus-replay cycle deltas (nonzero entries only).
    source_deltas: dict[str, int] = field(default_factory=dict)
    #: Index of the first transmission whose payload differs, if any.
    first_payload_mismatch: int | None = None
    #: play/replay cycle totals at capture time.
    play_cycles: int = 0
    replay_cycles: int = 0

    @property
    def dominant_source(self) -> str | None:
        """The source with the largest absolute cycle delta."""
        if not self.source_deltas:
            return None
        return max(self.source_deltas,
                   key=lambda s: abs(self.source_deltas[s]))

    def summary(self) -> str:
        """One-paragraph human rendering for logs and error messages."""
        lines = [f"divergence flight record: {self.reason}",
                 f"  play {self.play_cycles:,} cycles vs "
                 f"replay {self.replay_cycles:,} cycles"]
        if self.first_payload_mismatch is not None:
            lines.append(f"  first payload mismatch at tx "
                         f"#{self.first_payload_mismatch}")
        if self.source_deltas:
            deltas = ", ".join(f"{source} {delta:+,}"
                               for source, delta
                               in list(self.source_deltas.items())[:6])
            lines.append(f"  per-source cycle deltas (play-replay): "
                         f"{deltas}")
        if self.play_tail:
            lines.append(f"  last play tx: {self.play_tail[-1]}")
        if self.replay_tail:
            lines.append(f"  last replay tx: {self.replay_tail[-1]}")
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------------

    def to_json_dict(self) -> dict:
        """JSON-safe dict (tuples become lists; keys stay strings)."""
        return {"reason": self.reason,
                "play_tail": [list(pair) for pair in self.play_tail],
                "replay_tail": [list(pair) for pair in self.replay_tail],
                "source_deltas": dict(self.source_deltas),
                "first_payload_mismatch": self.first_payload_mismatch,
                "play_cycles": self.play_cycles,
                "replay_cycles": self.replay_cycles}

    @classmethod
    def from_json_dict(cls, data: dict) -> "DivergenceRecord":
        """Inverse of :meth:`to_json_dict` — tail pairs become tuples
        again, so a persisted record compares equal to the original."""
        return cls(
            reason=data["reason"],
            play_tail=[(int(c), str(p)) for c, p in data.get("play_tail",
                                                             [])],
            replay_tail=[(int(c), str(p))
                         for c, p in data.get("replay_tail", [])],
            source_deltas={str(s): int(d)
                           for s, d in data.get("source_deltas",
                                                {}).items()},
            first_payload_mismatch=data.get("first_payload_mismatch"),
            play_cycles=int(data.get("play_cycles", 0)),
            replay_cycles=int(data.get("replay_cycles", 0)))


def flights_to_ndjson(records: "list[DivergenceRecord]") -> str:
    """One sorted-key JSON object per line; '' for no records."""
    return "\n".join(json.dumps(record.to_json_dict(), sort_keys=True)
                     for record in records) + ("\n" if records else "")


def flights_from_ndjson(text: str) -> "list[DivergenceRecord]":
    """Inverse of :func:`flights_to_ndjson`; the round trip re-exports
    byte-identically (sorted-key serialization is canonical)."""
    return [DivergenceRecord.from_json_dict(json.loads(line))
            for line in text.splitlines() if line.strip()]


def capture_divergence(play_result, replay_result, last_n: int = 16,
                       reason: str = "play/replay divergence"
                       ) -> DivergenceRecord:
    """Build a :class:`DivergenceRecord` from two execution results.

    Works on anything duck-typed like
    :class:`~repro.machine.machine.ExecutionResult`; ledgers and cycle
    totals are optional (runs without observability still get the
    transmission tails).
    """
    play_ledger = getattr(play_result, "ledger", None) or {}
    replay_ledger = getattr(replay_result, "ledger", None) or {}
    deltas: dict[str, int] = {}
    for source in play_ledger.keys() | replay_ledger.keys():
        diff = play_ledger.get(source, 0) - replay_ledger.get(source, 0)
        if diff:
            deltas[source] = diff
    deltas = dict(sorted(deltas.items(), key=lambda kv: (-abs(kv[1]), kv[0])))

    first_mismatch = None
    play_tx = getattr(play_result, "tx", [])
    replay_tx = getattr(replay_result, "tx", [])
    for i in range(min(len(play_tx), len(replay_tx))):
        if play_tx[i][1] != replay_tx[i][1]:
            first_mismatch = i
            break
    if first_mismatch is None and len(play_tx) != len(replay_tx):
        first_mismatch = min(len(play_tx), len(replay_tx))

    return DivergenceRecord(
        reason=reason,
        play_tail=_tail_events(play_result, last_n),
        replay_tail=_tail_events(replay_result, last_n),
        source_deltas=deltas,
        first_payload_mismatch=first_mismatch,
        play_cycles=getattr(play_result, "total_cycles", 0),
        replay_cycles=getattr(replay_result, "total_cycles", 0))

"""Command-line tools.

* ``python -m repro.tools.reproduce`` — regenerate the paper's tables and
  figures interactively (quick, parameterizable versions of the
  ``benchmarks/`` suite).
"""

"""Interactive reproduction of the paper's experiments.

Usage::

    python -m repro.tools.reproduce --list
    python -m repro.tools.reproduce fig2 fig7
    python -m repro.tools.reproduce all --runs 6 --requests 20
    python -m repro.tools.reproduce fig6 trace --store
    python -m repro.tools.reproduce serve --tenants 4 --epochs 3 --store
    python -m repro.tools.reproduce audit --covert ipctc
    python -m repro.tools.reproduce exec --scenario all --jobs 4
    python -m repro.tools.reproduce exec --covert sched --store
    python -m repro.tools.reproduce fleet-audit --nodes 4 \\
        --chaos crash:1@180 --slo p99_verdict_ms=400 \\
        --trace-out fleet-trace.json --store
    python -m repro.tools.reproduce slo p99_verdict_ms=400,max_unaudited=0.1
    python -m repro.tools.reproduce trace --profile --store
    python -m repro.tools.reproduce profile --diff --flame tdr-flame.svg
    python -m repro.tools.reproduce profile --run latest --folded out.txt
    python -m repro.tools.reproduce runs list
    python -m repro.tools.reproduce report --latest 2 --out tdr-report.html
    python -m repro.tools.reproduce bench-gate --advisory

Each experiment is a quick, parameterizable version of the corresponding
bench in ``benchmarks/`` (the benches add shape assertions and fixed
parameters; this tool is for exploration).  With ``--store [DIR]`` the
store-aware experiments (``fig6``, ``trace``, ``chaos``, ``fleet``,
``serve``, ``audit``, ``exec``) persist their full evidence — ledgers, metrics,
traces, verdicts — to a :class:`~repro.obs.runstore.RunStore`; the
``runs`` / ``report`` / ``bench-gate`` subcommands list, re-render, and
gate on those artifacts.

Exit codes are part of the contract: every experiment returns a status,
and the process exit is the *highest* status any selected experiment
returned — so CI and scripts can gate directly on the verdict:

====  =========================================================
code  meaning
====  =========================================================
0     clean — every audit verdicted, nothing flagged
1     flagged — a tamper, divergence, or covert timing deviation
2     usage — bad arguments, unknown experiment, malformed spec
3     degraded — no flag, but coverage was partial (audits shed,
      sessions unaudited, or the fleet ran in degraded mode)
4     SLO breach — nothing flagged, but a ``--slo`` objective (or
      ``reproduce slo``) found a latency/coverage target missed
====  =========================================================
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.experiment import (NfsTrafficModel, run_detector_matrix,
                                       matrix_as_table)
from repro.analysis.stats import spread_percent
from repro.apps import (build_kernel_program, build_nfs_program,
                        build_nfs_workload, compile_app, zero_array_source)
from repro.channels import all_channels
from repro.core.tdr import play, replay_naive, round_trip
from repro.determinism import SplitMix64
from repro.detectors import all_statistical_detectors
from repro.machine import MachineConfig
from repro.machine.config import RuntimeKind
from repro.machine.noise import scenario_config
from repro.obs import (MITIGATED_SOURCES, Observability,
                       format_attribution_table)
from repro.obs.metrics import MetricsRegistry, phase_report, time_phase

#: The exit-code contract (see the module docstring and DESIGN.md).
EXIT_CLEAN = 0
EXIT_FLAGGED = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_SLO_BREACH = 4

_EXIT_TABLE = """\
exit codes:
  0  clean     every audit verdicted, nothing flagged
  1  flagged   tamper, divergence, or covert timing deviation
  2  usage     bad arguments, unknown experiment, malformed chaos spec
  3  degraded  no flag, but coverage was partial (audits shed, sessions
               unaudited, or the fleet entered degraded mode)
  4  SLO breach  nothing flagged, but an --slo objective missed its
               latency or coverage target (flags take precedence)
with several experiments selected, the process exits with the highest
status any of them returned."""


def _store(args):
    """The :class:`RunStore` selected by ``--store``, or ``None``."""
    root = getattr(args, "store", None)
    if root is None:
        return None
    from repro.obs.runstore import RunStore, default_store_root

    return RunStore(root or default_store_root())


def _print_phase_report(registry) -> None:
    rows = phase_report(registry)
    if not rows:
        return
    print()
    print(f"  {'phase':24s} {'runs':>5s} {'wall-clock':>11s}")
    for name, count, total in rows:
        print(f"  {name:24s} {count:>5d} {total:>10.2f}s")


def _compiled_regions_table(regions, top: int = 8) -> str:
    """The compiled-regions table printed by ``trace`` and ``profile``.

    Re-sorts busiest-first with a full (function, head) tiebreak, so the
    rendering is deterministic even for regions loaded back from a
    stored run (JSON round trips preserve order, but the table should
    not depend on the producer's ordering).
    """
    ranked = sorted(regions, key=lambda r: (-r["instructions"],
                                            r["function"], r["head_pc"]))
    lines = [f"    {'function':<16s} {'head':>5s} {'len':>4s} "
             f"{'entries':>9s} {'side-exits':>10s} "
             f"{'instructions':>13s} {'cycles':>13s}"]
    for region in ranked[:top]:
        lines.append(
            f"    {region['function']:<16s} {region['head_pc']:>5d} "
            f"{region['length']:>4d} {region['entries']:>9,} "
            f"{region['side_exits']:>10,} "
            f"{region['instructions']:>13,} {region['cycles']:>13,}")
    return "\n".join(lines)


def _banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def run_fig2(args) -> None:
    _banner("Figure 2 — time noise of zeroing an array")
    program = compile_app(zero_array_source(elements=8192))
    for scenario in ("user-noisy", "user-quiet", "kernel", "kernel-quiet"):
        config = scenario_config(scenario)
        times = [float(play(program, config, seed=s).total_cycles)
                 for s in range(args.runs)]
        print(f"  {scenario:14s} variance = {spread_percent(times):8.2f}%")


def run_fig3(args) -> None:
    _banner("Figure 3 — naive replay vs play")
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(33),
                                  num_requests=args.requests)
    outcome = round_trip(program, MachineConfig(), workload=workload)
    naive = replay_naive(program, outcome.play.log, MachineConfig(),
                         seed=7)
    print(f"  play:         {outcome.play.total_ns / 1e6:9.2f} ms")
    print(f"  TDR replay:   {outcome.replay.total_ns / 1e6:9.2f} ms "
          f"(error {outcome.audit.total_time_error * 100:.3f}%)")
    print(f"  naive replay: {naive.total_ns / 1e6:9.2f} ms "
          f"(wait-skipping + injection overhead)")


def run_table2(args) -> None:
    _banner("Table 2 — SciMark: Sanity / Oracle-INT / Oracle-JIT")
    clean = scenario_config("clean")
    print(f"  {'kernel':8s} {'Sanity':>9s} {'INT':>6s} {'JIT':>9s}")
    for name in ("sor", "smm", "mc", "fft", "lu"):
        program = build_kernel_program(name)
        sanity = play(program, scenario_config("sanity"),
                      seed=0).total_cycles
        oint = play(program, clean.with_overrides(name="i"),
                    seed=0).total_cycles
        ojit = play(program, clean.with_overrides(
            name="j", runtime=RuntimeKind.ORACLE_JIT), seed=0).total_cycles
        print(f"  {name.upper():8s} {sanity / oint:>9.4f} {'1.0':>6s} "
              f"{ojit / oint:>9.4f}")


def run_fig6(args) -> None:
    _banner("Figure 6 — SciMark timing stability")
    from repro.analysis.parallel import MachineSpec, run_fleet_observed
    from repro.obs.report import fig6_lines

    kernels = ("sor", "smm", "mc", "lu", "fft")
    scenarios = ("dirty", "clean", "sanity")
    specs = [MachineSpec(program=f"kernel:{name}",
                         config=scenario_config(scenario), seed=seed)
             for name in kernels for scenario in scenarios
             for seed in range(args.runs)]
    results, fleet = run_fleet_observed(
        specs, jobs=args.jobs if args.jobs else 1)

    cursor = iter(results)
    spreads: dict[str, dict[str, float]] = {}
    for name in kernels:
        spreads[name.upper()] = {
            scenario: spread_percent(
                [float(next(cursor).total_cycles)
                 for _ in range(args.runs)])
            for scenario in scenarios}
    fig6 = {"kernels": [name.upper() for name in kernels],
            "scenarios": list(scenarios), "spreads": spreads}
    for line in fig6_lines(fig6):
        print(line)

    store = _store(args)
    if store is not None:
        from repro.obs.runstore import RunRecord

        run_id = store.save(RunRecord(
            kind="fig6", label=f"{args.runs} runs per cell",
            config={"runs": args.runs, "jobs": args.jobs or 1},
            seeds=list(range(args.runs)),
            metrics=fleet.registry.snapshot(),
            ledgers={"merged": fleet.ledger_totals()},
            figures={"fig6": fig6}))
        print(f"  [stored {run_id} in {store.root}]")


def run_fig7(args) -> None:
    _banner("Figure 7 / §6.4 — TDR replay accuracy")
    program = build_nfs_program()
    worst = 0.0
    for trace in range(args.runs):
        workload = build_nfs_workload(SplitMix64(500 + trace),
                                      num_requests=args.requests)
        outcome = round_trip(program, MachineConfig(), workload=workload,
                             play_seed=trace, replay_seed=9000 + trace)
        worst = max(worst, outcome.audit.max_rel_ipd_diff)
        print(f"  trace {trace}: total err "
              f"{outcome.audit.total_time_error * 100:6.3f}%  "
              f"max IPD err {outcome.audit.max_rel_ipd_diff * 100:6.3f}%")
    print(f"  worst IPD difference: {worst * 100:.3f}% (paper: 1.85%)")


def run_sec65(args) -> None:
    _banner("§6.5 — log size")
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(800),
                                  num_requests=args.requests)
    result = play(program, MachineConfig(), workload=workload, seed=0)
    log = result.log
    breakdown = log.size_breakdown()
    print(f"  {len(log)} events, {log.size_bytes()} bytes "
          f"({log.size_bytes() / len(result.tx):.1f} B/request)")
    print(f"  packets {breakdown['packet']} B, times {breakdown['time']} B")


def run_fig8(args) -> None:
    _banner("Figure 8 — detector AUC matrix (statistical detectors, "
            "synthetic traffic)")
    cells = run_detector_matrix(all_channels(), all_statistical_detectors,
                                model=NfsTrafficModel(),
                                num_training=30, num_test=args.runs * 4,
                                packets_per_trace=120, seed=2014,
                                jobs=args.jobs if args.jobs else 1)
    print(matrix_as_table(cells))
    print("  (run `pytest benchmarks/test_fig8_roc.py` for the VM-based "
          "Sanity-detector column)")

    store = _store(args)
    if store is not None:
        from repro.analysis.experiment import matrix_to_figures
        from repro.obs.runstore import RunRecord

        figures = matrix_to_figures(cells)
        run_id = store.save(RunRecord(
            kind="fig8", label=f"{len(cells)} matrix cells",
            config={"num_test": args.runs * 4, "seed": 2014},
            figures=figures))
        print(f"  [stored {run_id} in {store.root}]")


def run_chaos(args) -> int:
    _banner("Chaos matrix — resilient audit under injected faults")
    from repro.core.attestation import attest_execution
    from repro.core.replay_cache import ReplayCache
    from repro.core.resilience import AuditClassification, audit_resilient
    from repro.faults import LogTransferChannel, standard_fault_kinds

    registry = MetricsRegistry()
    cache = ReplayCache(registry=registry)
    seed = args.chaos_seed
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(seed),
                                  num_requests=args.requests)
    with time_phase("chaos.baseline-play", registry):
        observed = play(program, MachineConfig(), workload=workload, seed=0)
    data = observed.log.to_bytes()
    key = b"chaos-machine-key"
    auth = attest_execution(observed.log, key)
    print(f"  baseline: {len(observed.tx)} tx, {len(observed.log)} log "
          f"entries, {len(data)} bytes (seed {seed})")
    print(f"  {'fault':20s} {'sev':>3s} {'classification':18s} "
          f"{'coverage':>8s} {'consistent':>10s}")
    outcomes = []
    with time_phase("chaos.fault-sweep", registry):
        for severity in range(1, args.severities + 1):
            for plan in standard_fault_kinds(severity):
                damaged = plan.apply(data,
                                     SplitMix64(seed).fork(
                                         f"{plan.name}:{severity}"))
                outcome = audit_resilient(program, observed, damaged,
                                          authenticator=auth,
                                          signing_key=key,
                                          replay_cache=cache)
                outcomes.append(outcome)
                verdict = ("-" if outcome.consistent is None
                           else str(outcome.consistent))
                print(f"  {plan.name:20s} {severity:>3d} "
                      f"{outcome.classification.value:18s} "
                      f"{outcome.coverage:>8.2f} {verdict:>10s}")
    with time_phase("chaos.transfer-sweep", registry):
        for drop in (0.1, 0.2, 0.6, 0.9):
            channel = LogTransferChannel(drop_rate=drop, mtu_bytes=512,
                                         max_retries=6)
            shipped = channel.transfer(data,
                                       SplitMix64(seed).fork(f"xfer:{drop}"))
            outcome = audit_resilient(program, observed, transfer=shipped,
                                      replay_cache=cache)
            outcomes.append(outcome)
            print(f"  transfer drop={drop:.1f}: "
                  f"{'delivered' if shipped.delivered else 'degraded':10s} "
                  f"{shipped.retransmissions:3d} retx -> "
                  f"{outcome.classification.value} "
                  f"(coverage {outcome.coverage:.2f})")
    print(f"\n  replay cache: {cache.hits} hits, {cache.misses} misses")
    flagged = [o for o in outcomes
               if o.classification in (AuditClassification.TAMPER_DETECTED,
                                       AuditClassification.REPLAY_DIVERGENT)
               or o.consistent is False]
    print(f"  {len(flagged)}/{len(outcomes)} audits raised a "
          f"tamper/divergence verdict"
          + (" -> non-zero exit" if flagged else ""))

    store = _store(args)
    if store is not None:
        from repro.obs.runstore import RunRecord

        verdicts: dict = {"audits": len(outcomes),
                          "cache_hits": cache.hits,
                          "cache_misses": cache.misses}
        for outcome in outcomes:
            slug = f"class_{outcome.classification.value}"
            verdicts[slug] = verdicts.get(slug, 0) + 1
        run_id = store.save(RunRecord(
            kind="chaos", label=f"seed {seed}",
            config={"seed": seed, "severities": args.severities,
                    "requests": args.requests},
            metrics=registry.snapshot(),
            verdicts=verdicts,
            flights=[o.flight.to_json_dict() for o in outcomes
                     if o.flight is not None]))
        print(f"  [stored {run_id} in {store.root}]")
    _print_phase_report(registry)
    return 1 if flagged else 0


def run_trace(args) -> None:
    _banner("Trace — cycle attribution, opcode profile, Chrome trace")
    obs = Observability(profile=getattr(args, "profile", False))
    program = build_nfs_program()
    noisy = scenario_config("dirty")
    with time_phase("trace.round-trip", obs.registry):
        outcome = round_trip(program, noisy,
                             workload=build_nfs_workload(
                                 SplitMix64(77),
                                 num_requests=args.requests),
                             obs=obs)
    print(format_attribution_table(
        outcome.play.ledger, outcome.play.total_cycles,
        title=f"play ({noisy.name}, {outcome.play.total_cycles:,} cycles)"))
    print()
    print(format_attribution_table(
        outcome.replay.ledger, outcome.replay.total_cycles,
        title=f"replay ({noisy.name}, "
              f"{outcome.replay.total_cycles:,} cycles)"))

    sanity = scenario_config("sanity")
    with time_phase("trace.clean-play", obs.registry):
        clean = play(program, sanity,
                     workload=build_nfs_workload(SplitMix64(77),
                                                 num_requests=args.requests),
                     seed=0, obs=obs)
    print()
    print(format_attribution_table(
        clean.ledger, clean.total_cycles,
        title=f"play ({sanity.name}, {clean.total_cycles:,} cycles)"))
    leaked = sum(clean.ledger.get(s, 0) for s in MITIGATED_SOURCES)
    print(f"  mitigated sources ({', '.join(MITIGATED_SOURCES)}): "
          f"{leaked:,} cycles"
          + ("  [Table 1: fully mitigated]" if leaked == 0 else ""))

    if outcome.play.opcodes:
        top = sorted(outcome.play.opcodes.items(),
                     key=lambda kv: (-kv[1], kv[0]))[:8]
        print()
        print("  sampled opcode profile (play, top 8):")
        for op, count in top:
            print(f"    {op:12s} {count:>8,} samples")

    jit = outcome.play.jit
    if jit is not None and jit["regions"]:
        covered = jit["jit_instructions"] / max(1,
                                                outcome.play.instructions)
        print()
        print(f"  trace-compiled regions (play): "
              f"{jit['compiled_regions']} compiled, "
              f"{jit['entries']:,} entries, {jit['side_exits']:,} side "
              f"exits, {covered:.1%} of instructions; busiest:")
        print(_compiled_regions_table(jit["regions"]))

    if outcome.play.profile is not None:
        from repro.obs.profiler import profile_lines

        print()
        for line in profile_lines(outcome.play.profile):
            print(line)

    trace_out = args.trace_out or "tdr-trace.json"
    obs.tracer.write_chrome_trace(trace_out)
    print(f"\n  wrote {len(obs.tracer)} trace events to {trace_out} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")

    store = _store(args)
    if store is not None:
        from repro.obs.runstore import RunRecord

        # The table specs carry the exact titles printed above, so
        # `reproduce report` reproduces this stdout verbatim.
        tables = [
            {"ledger": "play",
             "total_cycles": outcome.play.total_cycles,
             "title": f"play ({noisy.name}, "
                      f"{outcome.play.total_cycles:,} cycles)"},
            {"ledger": "replay",
             "total_cycles": outcome.replay.total_cycles,
             "title": f"replay ({noisy.name}, "
                      f"{outcome.replay.total_cycles:,} cycles)"},
            {"ledger": "clean",
             "total_cycles": clean.total_cycles,
             "title": f"play ({sanity.name}, "
                      f"{clean.total_cycles:,} cycles)"},
        ]
        figures: dict = {"table1": {"tables": tables}}
        # The tier-up region summary and (with --profile) the profiles
        # persist per side, so `reproduce profile --run REF` can
        # annotate compiled regions and diff stored runs.
        for side, result in (("play", outcome.play),
                             ("replay", outcome.replay),
                             ("clean", clean)):
            if result.jit is not None:
                figures.setdefault("jit", {})[side] = result.jit
            if result.profile is not None:
                figures.setdefault("profile", {})[side] = result.profile
        run_id = store.save(RunRecord(
            kind="trace", label=f"{args.requests} NFS requests",
            config={"scenario": noisy.name, "requests": args.requests},
            seeds=[0, 1],
            metrics=obs.registry.snapshot(),
            ledgers={"play": dict(outcome.play.ledger or {}),
                     "replay": dict(outcome.replay.ledger or {}),
                     "clean": dict(clean.ledger or {})},
            verdicts={"consistent": outcome.audit.is_consistent(),
                      "payloads_match": outcome.audit.payloads_match,
                      "mitigated_leak_cycles": leaked},
            figures=figures,
            flights=([outcome.audit.flight.to_json_dict()]
                     if outcome.audit.flight is not None else []),
            trace_ndjson=obs.tracer.to_ndjson()))
        print(f"  [stored {run_id} in {store.root}]")
    _print_phase_report(obs.registry)


def run_fleet_exp(args) -> None:
    _banner("Fleet — parallel experiment execution")
    from repro.analysis.parallel import (MachineSpec, default_jobs,
                                         run_fleet_observed)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    config = MachineConfig()
    specs = [MachineSpec(program="nfs", config=config, seed=seed,
                         workload=f"nfs:{7000 + seed}:{args.requests}")
             for seed in range(args.runs)]

    started = time.time()
    serial, serial_obs = run_fleet_observed(specs, jobs=1)
    serial_s = time.time() - started
    started = time.time()
    parallel, fleet_obs = run_fleet_observed(specs, jobs=jobs)
    parallel_s = time.time() - started

    identical = all(
        a.total_cycles == b.total_cycles and a.tx == b.tx
        for a, b in zip(serial, parallel))
    ledger_identical = (serial_obs.ledger_totals()
                        == fleet_obs.ledger_totals())
    metrics_identical = (serial_obs.registry.snapshot()
                         == fleet_obs.registry.snapshot())
    print(f"  {len(specs)} NFS plays x {args.requests} requests")
    print(f"  serial (jobs=1):   {serial_s:7.2f}s")
    print(f"  fleet  (jobs={jobs}):  {parallel_s:7.2f}s  "
          f"speedup {serial_s / parallel_s:.2f}x on "
          f"{default_jobs()} CPUs")
    print(f"  results bit-identical: {identical}")
    print(f"  merged ledger identical: {ledger_identical}  "
          f"merged metrics identical: {metrics_identical}  "
          f"({fleet_obs.workers} worker snapshots)")
    for spec, result in zip(specs[:4], parallel[:4]):
        print(f"    seed {spec.seed}: {result.total_cycles:,} cycles, "
              f"{len(result.tx)} tx")

    store = _store(args)
    if store is not None:
        from repro.obs.runstore import RunRecord

        run_id = store.save(RunRecord(
            kind="fleet", label=f"{len(specs)} NFS plays, jobs={jobs}",
            config={"runs": args.runs, "requests": args.requests,
                    "jobs": jobs},
            seeds=[spec.seed for spec in specs],
            metrics=fleet_obs.registry.snapshot(),
            ledgers={"merged": fleet_obs.ledger_totals()},
            verdicts={"bit_identical": identical,
                      "ledger_identical": ledger_identical,
                      "metrics_identical": metrics_identical,
                      "workers": fleet_obs.workers}))
        print(f"  [stored {run_id} in {store.root}]")


def run_audit(args) -> int:
    _banner("Audit — one attested machine, end to end")
    from repro.analysis.experiment import vm_covert_schedule
    from repro.apps import build_kvstore_program, build_kvstore_workload
    from repro.channels import channel_by_name
    from repro.core.attestation import attest_execution
    from repro.core.log import EventKind, EventLog, LogEntry
    from repro.core.resilience import AuditClassification, audit_resilient

    config = MachineConfig()
    program = build_kvstore_program()
    workload = build_kvstore_workload(SplitMix64(args.chaos_seed),
                                      num_requests=args.requests)
    schedule = None
    if args.covert:
        rng = SplitMix64(args.chaos_seed).fork("audit-covert")
        channel = channel_by_name(args.covert)
        model = NfsTrafficModel()
        channel.fit(model.ipds(240, rng.fork("adversary")), rng.fork("fit"))
        schedule = vm_covert_schedule(
            channel, model.ipds(args.requests, rng.fork("natural")),
            [1, 0, 1, 1], rng.fork("encode"),
            frequency_hz=config.frequency_hz)
    observed = play(program, config, workload=workload, seed=0,
                    covert_schedule=schedule)
    key = b"reproduce-audit-key"
    auth = attest_execution(observed.log, key)
    if args.tamper:
        # Rewrite one committed packet after attesting — valid framing,
        # broken chain: exactly what the admission check must catch.
        entries = list(observed.log.entries)
        victim = next(i for i, e in enumerate(entries)
                      if e.kind == EventKind.PACKET and e.payload)
        original = entries[victim]
        entries[victim] = LogEntry(
            original.kind, original.instr_count,
            payload=bytes([original.payload[0] ^ 0x01])
            + original.payload[1:], value=original.value)
        shipped = EventLog()
        shipped.entries = entries
        data = shipped.to_bytes()
    else:
        data = observed.log.to_bytes()

    outcome = audit_resilient(program, observed, data, config=config,
                              authenticator=auth, signing_key=key,
                              runstore=_store(args),
                              run_label="reproduce audit")
    verdict = ("-" if outcome.consistent is None
               else str(outcome.consistent))
    print(f"  {len(observed.tx)} tx, {len(observed.log)} log entries"
          + (f", covert channel '{args.covert}' active" if args.covert
             else "") + (", log tampered in transit" if args.tamper
                         else ""))
    print(f"  classification: {outcome.classification.value}  "
          f"coverage {outcome.coverage:.2f}  timing-consistent {verdict}")
    print(f"  {outcome.detail}")
    if outcome.run_id:
        print(f"  [stored {outcome.run_id}]")
    flagged = (outcome.classification in
               (AuditClassification.TAMPER_DETECTED,
                AuditClassification.REPLAY_DIVERGENT)
               or outcome.consistent is False)
    if flagged:
        print("  verdict: FLAGGED -> non-zero exit")
        return EXIT_FLAGGED
    if (outcome.classification is not AuditClassification.CLEAN
            or outcome.coverage < 1.0):
        # No flag, but the audit did not cover the whole execution —
        # distinct from clean so CI can tell "verified" from "survived".
        print("  verdict: clean but degraded coverage -> exit 3")
        return EXIT_DEGRADED
    print("  verdict: clean")
    return EXIT_CLEAN


def run_serve(args) -> int:
    _banner("Serve — continuous-audit verifier service (virtual time)")
    from repro.service import (AuditService, default_tenants,
                               persist_service_report)

    registry = MetricsRegistry()
    tenants = default_tenants(args.tenants, covert_channel=args.covert
                              or "ipctc", requests=args.requests)
    service = AuditService(tenants, epochs=args.epochs,
                           seed=args.serve_seed, num_workers=args.workers,
                           registry=registry)
    with time_phase("serve.run", registry):
        report = service.run(jobs=args.jobs)
    for line in report.render_lines():
        print(f"  {line}")

    store = _store(args)
    if store is not None:
        run_id = persist_service_report(
            store, report,
            label=f"{args.tenants} tenants x {args.epochs} epochs")
        print(f"  [stored {run_id} in {store.root}]")
    _print_phase_report(registry)
    if report.exit_code:
        print("  flagged tenants -> non-zero exit")
    return report.exit_code


def run_fleet_audit(args) -> int:
    _banner("Fleet audit — sharded verifier fleet under node chaos")
    from repro.errors import ObservabilityError
    from repro.faults.plans import FaultPlanError, NodeChaosPlan
    from repro.obs.dist import SLOSpec, evaluate_slo
    from repro.service import (FleetService, FleetTopology, default_tenants,
                               persist_fleet_report)

    chaos = None
    if args.chaos:
        try:
            chaos = NodeChaosPlan.parse(args.chaos)
        except FaultPlanError as exc:
            print(f"fleet-audit: bad --chaos spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    slo_spec = None
    if args.slo:
        try:
            slo_spec = SLOSpec.parse(args.slo)
        except ObservabilityError as exc:
            print(f"fleet-audit: bad --slo spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    registry = MetricsRegistry()
    tenants = default_tenants(args.tenants, covert_channel=args.covert
                              or "ipctc", requests=args.requests)
    service = FleetService(
        tenants, topology=FleetTopology(num_nodes=args.nodes),
        epochs=args.epochs, seed=args.serve_seed, chaos=chaos,
        registry=registry)
    with time_phase("fleet_audit.run", registry):
        report = service.run(jobs=args.jobs)
    for line in report.render_lines():
        print(f"  {line}")

    slo_report = None
    if slo_spec is not None:
        slo_report = evaluate_slo(
            slo_spec, report.fleet_obs,
            sessions_total=report.sessions_total,
            unaudited=len(report.unaudited),
            horizon_ms=report.horizon_ms)
        # Ride the verdict into the stored figures and the dashboard.
        report.fleet_obs["slo"] = slo_report.to_json_dict()
        print()
        for line in slo_report.render_lines():
            print(f"  {line}")

    if args.trace_out:
        service.dist.write_chrome_trace(args.trace_out)
        print(f"  wrote {len(service.dist)} fleet trace events to "
              f"{args.trace_out} (load in chrome://tracing or "
              f"https://ui.perfetto.dev)")

    store = _store(args)
    if store is not None:
        run_id = persist_fleet_report(
            store, report,
            label=f"{args.nodes} nodes x {args.tenants} tenants, "
                  f"chaos={report.chaos_spec or 'none'}")
        print(f"  [stored {run_id} in {store.root}]")
    _print_phase_report(registry)
    if report.exit_code == EXIT_FLAGGED:
        print("  flagged tenants -> non-zero exit")
        return EXIT_FLAGGED
    if slo_report is not None and not slo_report.ok:
        print(f"  SLO breach ({', '.join(slo_report.breached)}) -> exit 4")
        return EXIT_SLO_BREACH
    if report.exit_code == EXIT_DEGRADED:
        print("  degraded coverage (no flag) -> exit 3")
    return report.exit_code


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (the fleet dashboards use the same)."""
    if not samples:
        return 0.0
    ranked = sorted(samples)
    rank = max(1, math.ceil(q * len(ranked)))
    return ranked[rank - 1]


#: ``--covert`` aliases for ``exec``: channel name or scenario name both
#: select the scenario whose guest encodes that channel.
_EXEC_COVERT = {"sched": "sched", "schedtc": "sched",
                "mbox": "mbox", "mboxtc": "mbox"}


def run_exec(args) -> int:
    _banner("Exec — guest executive: multi-process TDR on one machine")
    from repro.errors import ObservabilityError
    from repro.exec import (EXEC_SCENARIOS, exec_fleet_task,
                            exec_round_trip, exec_scenario)
    from repro.obs.dist import SLOSpec
    from repro.obs.ledger import format_process_table

    slo_spec = None
    if args.slo:
        try:
            slo_spec = SLOSpec.parse(args.slo)
        except ObservabilityError as exc:
            print(f"exec: bad --slo spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    if args.scenario != "all" and args.scenario not in EXEC_SCENARIOS:
        print(f"exec: unknown scenario '{args.scenario}' (choose from "
              f"{', '.join(EXEC_SCENARIOS)}, all)", file=sys.stderr)
        return EXIT_USAGE
    covert_of = None
    if args.covert:
        covert_of = _EXEC_COVERT.get(args.covert)
        if covert_of is None:
            print(f"exec: --covert must be one of "
                  f"{', '.join(sorted(_EXEC_COVERT))} (got "
                  f"'{args.covert}')", file=sys.stderr)
            return EXIT_USAGE

    names = (list(EXEC_SCENARIOS) if args.scenario == "all"
             else [args.scenario])
    status = EXIT_CLEAN
    verdict_ms: list[float] = []
    unaudited = 0
    figures: dict = {"scenarios": {}}
    ledgers: dict = {}
    verdicts: dict = {}

    def one(name: str, covert: bool) -> None:
        nonlocal status, unaudited
        scenario = exec_scenario(name)
        obs = Observability()
        tdr = exec_round_trip(scenario, play_seed=0, replay_seed=1,
                              covert=covert, obs=obs)
        play_r, replay_r, audit = tdr.play, tdr.replay, tdr.audit
        # Verdict latency in *virtual* milliseconds: the replay is the
        # audit, so its virtual duration is the deterministic stand-in
        # for "how long until the verdict" (wall-clock would make the
        # SLO verdict — and the CI byte-diff — machine-dependent).
        verdict_ms.append(replay_r.total_ns / 1e6)
        consistent = audit.is_consistent()
        deviation = audit.deviation_score()
        label = name + (" [covert]" if covert else "")
        print(f"  {label}: {play_r.stats['exec_processes']} processes, "
              f"{play_r.stats['exec_switches']} switches, "
              f"{play_r.stats['exec_messages']} messages, "
              f"{play_r.instructions:,} instructions")
        print(f"    play {play_r.total_cycles:,} cycles / replay "
              f"{replay_r.total_cycles:,}; deviation "
              f"{deviation:.4f} ms; payloads "
              f"{'match' if audit.payloads_match else 'DIFFER'}")
        if play_r.process_ledger:
            table = format_process_table(play_r.process_ledger,
                                         play_r.total_cycles)
            print("    " + table.replace("\n", "\n    "))
            ledgers[label] = {proc: dict(sources) for proc, sources
                              in play_r.process_ledger.items()}
        exited = play_r.stats["exec_exited"]
        total = play_r.stats["exec_processes"]
        if exited < total:
            print(f"    only {exited}/{total} processes exited -> "
                  f"degraded")
            unaudited += 1
            status = max(status, EXIT_DEGRADED)
        if consistent:
            print("    verdict: consistent (no timing deviation)")
        else:
            print("    verdict: FLAGGED — timing deviation beyond "
                  "tolerance")
            status = max(status, EXIT_FLAGGED)
        verdicts[label] = {"consistent": consistent,
                           "deviation_ms": deviation,
                           "payloads_match": audit.payloads_match}
        figures["scenarios"][label] = {
            "play_cycles": play_r.total_cycles,
            "replay_cycles": replay_r.total_cycles,
            "instructions": play_r.instructions,
            "switches": play_r.stats["exec_switches"],
            "messages": play_r.stats["exec_messages"],
            "deviation_ms": deviation,
        }

    for name in names:
        one(name, covert=False)
    if covert_of is not None:
        one(covert_of, covert=True)

    if args.jobs and args.jobs > 1:
        # Satellite of the determinism contract: the same task set run
        # through the process pool at --jobs N must reproduce the serial
        # summaries (cycles, tx, log digests) bit for bit.
        from repro.analysis.parallel import run_fleet

        tasks = [(name, covert, seed, seed + 100, None)
                 for name in names
                 for covert in ((False, True)
                                if exec_scenario(name).rounds else (False,))
                 for seed in (0, 1)]
        serial = run_fleet(tasks, jobs=1, worker=exec_fleet_task)
        fanned = run_fleet(tasks, jobs=args.jobs, worker=exec_fleet_task)
        identical = serial == fanned
        print(f"  fleet determinism: {len(tasks)} round trips, jobs=1 "
              f"vs jobs={args.jobs}: "
              f"{'bit-identical' if identical else 'DIVERGED'}")
        figures["fleet"] = {"tasks": len(tasks), "jobs": args.jobs,
                            "identical": identical}
        if not identical:
            status = max(status, EXIT_FLAGGED)

    if slo_spec is not None:
        print("  slo:")
        breached = []
        for key, target in slo_spec.objectives():
            if key == "max_unaudited":
                value = unaudited / max(1, len(verdict_ms) + unaudited)
            elif key == "p99_queue_ms":
                value = 0.0  # audits run inline; nothing queues
            else:
                q = {"p50_verdict_ms": 0.50, "p95_verdict_ms": 0.95,
                     "p99_verdict_ms": 0.99}[key]
                value = _percentile(verdict_ms, q)
            ok = value <= target
            if not ok:
                breached.append(key)
            print(f"    {key:<16s} {value:>10.2f} <= {target:<10g} "
                  f"{'ok' if ok else 'BREACH'}")
        figures["slo"] = {"breached": breached}
        if breached and status in (EXIT_CLEAN, EXIT_DEGRADED):
            print(f"  SLO breach ({', '.join(breached)}) -> exit 4")
            status = EXIT_SLO_BREACH

    store = _store(args)
    if store is not None:
        from repro.obs.runstore import RunRecord

        record = RunRecord(
            kind="exec",
            label=f"scenario={args.scenario}"
                  + (f", covert={covert_of}" if covert_of else ""),
            config={"scenario": args.scenario,
                    "covert": args.covert or "",
                    "jobs": args.jobs or 1},
            seeds=[0, 1],
            ledgers=ledgers,
            verdicts=verdicts,
            figures=figures)
        run_id = store.save(record)
        print(f"  [stored {run_id} in {store.root}]")
    if status == EXIT_FLAGGED:
        print("  flagged -> non-zero exit")
    return status


EXPERIMENTS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table2": run_table2,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "sec65": run_sec65,
    "fig8": run_fig8,
    "chaos": run_chaos,
    "trace": run_trace,
    "fleet": run_fleet_exp,
    "audit": run_audit,
    "serve": run_serve,
    "fleet-audit": run_fleet_audit,
    "exec": run_exec,
}


def _open_store(root: str | None):
    from repro.obs.runstore import RunStore

    return RunStore(root) if root else RunStore()


def cmd_runs(argv: list[str]) -> int:
    """``reproduce runs [list|show|prune]`` — browse the run store."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce runs",
        description="List, inspect, and prune stored experiment runs.")
    parser.add_argument("action", nargs="?", default="list",
                        choices=("list", "show", "prune"))
    parser.add_argument("ref", nargs="?",
                        help="run id or unique prefix (for 'show')")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store root (default: REPRO_RUNSTORE "
                             "or .repro-runs)")
    parser.add_argument("--keep", type=int, default=10,
                        help="runs kept by 'prune' (default 10)")
    args = parser.parse_args(argv)
    from repro.errors import ObservabilityError

    store = _open_store(args.store)
    try:
        if args.action == "list":
            runs = store.list_runs()
            if not runs:
                print(f"no runs in {store.root}")
                return 0
            print(f"{'run id':24s} {'kind':10s} {'created':19s} label")
            for manifest in runs:
                created = time.strftime(
                    "%Y-%m-%d %H:%M:%S",
                    time.localtime(manifest.get("created_at", 0)))
                print(f"{manifest['run_id']:24s} "
                      f"{manifest['kind']:10s} {created:19s} "
                      f"{manifest.get('label', '')}")
            return 0
        if args.action == "show":
            if not args.ref:
                print("runs show needs a run id", file=sys.stderr)
                return 2
            from repro.obs.report import render_text

            run_id = store.resolve(args.ref)
            print(render_text(store.load(run_id), run_id))
            return 0
        removed = store.prune(args.keep)
        print(f"pruned {len(removed)} run(s), kept {len(store)}")
        for run_id in removed:
            print(f"  removed {run_id}")
        return 0
    except ObservabilityError as exc:
        print(f"runs: {exc}", file=sys.stderr)
        return 2


def cmd_report(argv: list[str]) -> int:
    """``reproduce report`` — re-render stored runs as text + HTML."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce report",
        description="Render stored runs as a self-contained HTML report "
                    "(and re-print their run-time numbers).")
    parser.add_argument("refs", nargs="*",
                        help="run ids or unique prefixes")
    parser.add_argument("--latest", type=int, default=0, metavar="N",
                        help="also render the N most recent runs")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store root (default: REPRO_RUNSTORE "
                             "or .repro-runs)")
    parser.add_argument("--out", default="tdr-report.html",
                        help="HTML output path (default tdr-report.html)")
    parser.add_argument("--title", default="TDR experiment report")
    args = parser.parse_args(argv)
    from repro.errors import ObservabilityError
    from repro.obs.report import render_html, render_text

    store = _open_store(args.store)
    try:
        refs = list(args.refs)
        if args.latest:
            refs.extend(m["run_id"]
                        for m in store.list_runs()[-args.latest:])
        if not refs:
            print("report needs run ids or --latest N", file=sys.stderr)
            return 2
        pairs = []
        seen: set[str] = set()
        for ref in refs:
            run_id = store.resolve(ref)
            if run_id not in seen:
                seen.add(run_id)
                pairs.append((run_id, store.load(run_id)))
    except ObservabilityError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    for run_id, record in pairs:
        print(render_text(record, run_id))
        print()
    document = render_html(pairs, title=args.title)
    Path(args.out).write_text(document, encoding="utf-8")
    print(f"wrote {args.out} ({len(document):,} bytes, "
          f"{len(pairs)} run(s))")
    return 0


def cmd_bench_gate(argv: list[str]) -> int:
    """``reproduce bench-gate`` — fail on perf regressions vs history.

    Compares a fresh ``BENCH_perf.json`` (the primary metric is
    ``machine_run.batched.instr_per_sec``) against the median of the
    ``bench`` runs already in the store, then records the fresh point.
    With fewer than two history points the gate is always advisory.
    """
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce bench-gate",
        description="Gate on BENCH_perf.json vs stored bench history.")
    parser.add_argument("--perf", default="BENCH_perf.json",
                        help="perf report to check "
                             "(default BENCH_perf.json)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store root (default: REPRO_RUNSTORE "
                             "or .repro-runs)")
    parser.add_argument("--max-regression", type=float, default=15.0,
                        metavar="PCT",
                        help="largest tolerated instr/s drop vs the "
                             "history median, percent (default 15)")
    parser.add_argument("--advisory", action="store_true",
                        help="report the verdict but never fail")
    parser.add_argument("--no-record", action="store_true",
                        help="do not add this measurement to history")
    args = parser.parse_args(argv)
    from repro.obs.runstore import RunRecord

    perf_path = Path(args.perf)
    if not perf_path.exists():
        print(f"bench-gate: no perf report at {perf_path} "
              f"(run benchmarks/test_perf_baseline.py first)",
              file=sys.stderr)
        return 2
    perf = json.loads(perf_path.read_text())
    try:
        current = perf["machine_run"]["batched"]["instr_per_sec"]
    except (KeyError, TypeError):
        print(f"bench-gate: {perf_path} has no "
              f"machine_run.batched.instr_per_sec (partial perf report — "
              f"run benchmarks/test_perf_baseline.py)", file=sys.stderr)
        return 2
    store = _open_store(args.store)
    history = [manifest["figures"]["perf"]["instr_per_sec"]
               for manifest in store.list_runs(kind="bench")
               if "perf" in manifest.get("figures", {})]
    # Record after reading history, so a fresh point never gates itself.
    if not args.no_record:
        run_id = store.save(RunRecord(
            kind="bench", label=f"{current:,} instr/s",
            figures={"perf": {"instr_per_sec": current,
                              "report": perf}}))
        print(f"bench-gate: recorded {run_id} in {store.root}")
    print(f"bench-gate: current {current:,} instr/s; "
          f"{len(history)} history point(s)")
    if len(history) < 2:
        print("bench-gate: ADVISORY — gating starts once two history "
              "points exist")
        return 0
    baseline = statistics.median(history)
    drop = (baseline - current) / baseline * 100.0
    print(f"bench-gate: history median {baseline:,.0f} instr/s; "
          f"change {-drop:+.1f}%")
    if drop > args.max_regression:
        message = (f"bench-gate: REGRESSION {drop:.1f}% exceeds the "
                   f"{args.max_regression:.1f}% budget")
        if args.advisory:
            print(message + " (advisory — not failing)")
            return 0
        print(message, file=sys.stderr)
        return 1
    print("bench-gate: PASS")
    return 0


def cmd_slo(argv: list[str]) -> int:
    """``reproduce slo SPEC`` — evaluate SLOs against a stored fleet run.

    Exit codes: 0 every objective met, 4 breach, 2 usage (bad spec, no
    stored fleet-audit run, or a run without fleet observability).
    """
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce slo",
        description="Evaluate a latency/coverage SLO spec against a "
                    "stored fleet-audit run (latest by default).")
    parser.add_argument("spec",
                        help="inline SLO spec, e.g. "
                             "'p99_verdict_ms=400,max_unaudited=0.1' "
                             "(keys: p50/p95/p99_verdict_ms, "
                             "p99_queue_ms, max_unaudited)")
    parser.add_argument("--run", default=None, metavar="REF",
                        help="run id or unique prefix (default: the "
                             "most recent fleet-audit run)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store root (default: REPRO_RUNSTORE "
                             "or .repro-runs)")
    parser.add_argument("--windows", type=int, default=4,
                        help="burn-rate windows over the virtual "
                             "horizon (default 4)")
    args = parser.parse_args(argv)
    from repro.errors import ObservabilityError
    from repro.obs.dist import SLOSpec, evaluate_slo

    try:
        spec = SLOSpec.parse(args.spec)
    except ObservabilityError as exc:
        print(f"slo: bad spec: {exc}", file=sys.stderr)
        return EXIT_USAGE
    store = _open_store(args.store)
    try:
        if args.run:
            run_id = store.resolve(args.run)
        else:
            fleet_runs = store.list_runs(kind="fleet-audit")
            if not fleet_runs:
                print(f"slo: no fleet-audit runs in {store.root} "
                      f"(run `reproduce fleet-audit --store` first)",
                      file=sys.stderr)
                return EXIT_USAGE
            run_id = fleet_runs[-1]["run_id"]
        record = store.load(run_id)
    except ObservabilityError as exc:
        print(f"slo: {exc}", file=sys.stderr)
        return EXIT_USAGE
    fleet_obs = record.figures.get("fleet_obs") or {}
    if not fleet_obs:
        print(f"slo: run {run_id} has no fleet observability payload "
              f"(kind '{record.kind}'; re-run fleet-audit with this "
              f"build)", file=sys.stderr)
        return EXIT_USAGE
    verdicts = record.verdicts or {}
    report = evaluate_slo(
        spec, fleet_obs,
        sessions_total=int(verdicts.get("sessions_total", 0)),
        unaudited=len(verdicts.get("unaudited", [])),
        horizon_ms=float(fleet_obs.get("horizon_ms")
                         or verdicts.get("horizon_ms", 0.0)),
        windows=args.windows)
    print(f"run {run_id} ({record.label or record.kind})")
    for line in report.render_lines():
        print(line)
    return EXIT_CLEAN if report.ok else EXIT_SLO_BREACH


def cmd_profile(argv: list[str]) -> int:
    """``reproduce profile`` — cycle-exact flame graphs and forensics.

    Without ``--run`` it plays a fresh covert round trip with the
    profiler on and profiles both sides; with ``--run REF`` it re-renders
    the profiles persisted with a stored run (annotating compiled
    regions from the stored tier-up summary).  ``--diff`` walks play vs
    replay to the first divergent (function, pc, source) frame;
    ``--flame``/``--folded`` write a standalone SVG flame graph (the
    differential view under ``--diff``) and flamegraph.pl-compatible
    folded stacks.
    """
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce profile",
        description="Profile guest cycles exactly: flame graphs, folded "
                    "stacks, and play-vs-replay divergence forensics.")
    parser.add_argument("--run", default=None, metavar="REF",
                        help="render a stored run's profiles instead of "
                             "playing a fresh round trip ('latest' = "
                             "most recent run that has one)")
    parser.add_argument("--diff", action="store_true",
                        help="diff play vs replay and name the first "
                             "divergent (function, pc, source) frame")
    parser.add_argument("--flame", default=None, metavar="OUT.svg",
                        help="write a standalone SVG flame graph (the "
                             "side-by-side differential view with "
                             "--diff)")
    parser.add_argument("--folded", default=None, metavar="OUT.txt",
                        help="write flamegraph.pl-compatible folded "
                             "stacks (play side)")
    parser.add_argument("--store", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="run store root; with a fresh run, also "
                             "persist its profiles")
    parser.add_argument("--requests", type=int, default=6,
                        help="NFS requests for a fresh run (default 6)")
    args = parser.parse_args(argv)
    from repro.errors import ObservabilityError
    from repro.obs.forensics import diff_lines, diff_profiles, \
        render_flame_diff_svg
    from repro.obs.profiler import (folded_lines, profile_lines,
                                    write_flame_svg)

    profiles: dict = {}
    jit_figures: dict = {}
    if args.run:
        store = _open_store(args.store)
        try:
            if args.run == "latest":
                with_profile = [m for m in store.list_runs()
                                if "profile" in m.get("figures", {})]
                if not with_profile:
                    print(f"profile: no stored runs with a profile in "
                          f"{store.root} (run `reproduce profile "
                          f"--store` or `trace --profile --store`)",
                          file=sys.stderr)
                    return EXIT_USAGE
                run_id = with_profile[-1]["run_id"]
            else:
                run_id = store.resolve(args.run)
            record = store.load(run_id)
        except ObservabilityError as exc:
            print(f"profile: {exc}", file=sys.stderr)
            return EXIT_USAGE
        profiles = record.figures.get("profile") or {}
        jit_figures = record.figures.get("jit") or {}
        if not profiles:
            print(f"profile: run {run_id} has no stored profile "
                  f"(kind '{record.kind}'; re-run the experiment with "
                  f"--profile)", file=sys.stderr)
            return EXIT_USAGE
        print(f"run {run_id} ({record.label or record.kind})")
    else:
        _banner("Profile — cycle-exact guest flame graphs")
        obs = Observability(profile=True)
        program = build_nfs_program()
        outcome = round_trip(
            program, MachineConfig(),
            workload=build_nfs_workload(SplitMix64(77),
                                        num_requests=args.requests),
            play_seed=0, replay_seed=0,
            covert_schedule=[1_500, 4_000, 2_500, 6_000], obs=obs)
        profiles = {"play": outcome.play.profile,
                    "replay": outcome.replay.profile}
        for side in ("play", "replay"):
            result = getattr(outcome, side)
            if result.jit is not None:
                jit_figures[side] = result.jit
        store = _store(args)
        if store is not None:
            from repro.core.tdr import persist_round_trip

            run_id = persist_round_trip(store, outcome, obs=obs,
                                        label=f"{args.requests} NFS "
                                              f"requests, covert",
                                        kind="profile")
            print(f"  [stored {run_id} in {store.root}]")

    for side in sorted(profiles):
        print()
        print(f"  {side} profile:")
        for line in profile_lines(profiles[side]):
            print(line)
    jit = jit_figures.get("play")
    if jit and jit.get("regions"):
        print()
        print(f"  compiled regions (play): {jit['compiled_regions']} "
              f"compiled, {jit['entries']:,} entries, "
              f"{jit['side_exits']:,} side exits:")
        print(_compiled_regions_table(jit["regions"]))

    if args.diff:
        if "play" not in profiles or "replay" not in profiles:
            print("profile: --diff needs both play and replay profiles",
                  file=sys.stderr)
            return EXIT_USAGE
        print()
        for line in diff_lines(diff_profiles(profiles["play"],
                                             profiles["replay"])):
            print(line)

    primary = profiles.get("play") or profiles[sorted(profiles)[0]]
    if args.folded:
        lines = folded_lines(primary)
        Path(args.folded).write_text("\n".join(lines) + "\n",
                                     encoding="utf-8")
        print(f"  wrote {len(lines)} folded stacks to {args.folded}")
    if args.flame:
        if args.diff and "replay" in profiles:
            svg = render_flame_diff_svg(profiles["play"],
                                        profiles["replay"])
            Path(args.flame).write_text(
                '<?xml version="1.0" encoding="UTF-8"?>\n' + svg + "\n",
                encoding="utf-8")
        else:
            write_flame_svg(args.flame, primary)
        print(f"  wrote flame graph to {args.flame}")
    return EXIT_CLEAN


SUBCOMMANDS = {
    "runs": cmd_runs,
    "report": cmd_report,
    "bench-gate": cmd_bench_gate,
    "slo": cmd_slo,
    "profile": cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce",
        description="Regenerate the paper's tables and figures.",
        epilog=_EXIT_TABLE,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all'), or a "
                             "subcommand: " + ", ".join(SUBCOMMANDS))
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--runs", type=int, default=6,
                        help="repetitions per configuration (default 6)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for fleet-aware "
                             "experiments (default: REPRO_JOBS or the "
                             "CPU count for 'fleet', serial elsewhere)")
    parser.add_argument("--requests", type=int, default=25,
                        help="NFS requests per trace (default 25)")
    parser.add_argument("--chaos-seed", type=int, default=2014,
                        help="seed for the chaos fault sweep "
                             "(default 2014)")
    parser.add_argument("--severities", type=int, default=3,
                        help="fault severities swept by 'chaos' "
                             "(default 3)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="Chrome trace file written by 'trace' "
                             "(default tdr-trace.json) and, when given "
                             "explicitly, the merged fleet trace of "
                             "'fleet-audit'")
    parser.add_argument("--tenants", type=int, default=4,
                        help="tenants simulated by 'serve' (default 4)")
    parser.add_argument("--epochs", type=int, default=2,
                        help="epochs simulated by 'serve' (default 2)")
    parser.add_argument("--workers", type=int, default=2,
                        help="virtual verifier workers for 'serve' "
                             "(default 2)")
    parser.add_argument("--serve-seed", type=int, default=2014,
                        help="service seed for 'serve' (default 2014)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="verifier nodes simulated by 'fleet-audit' "
                             "(default 4)")
    parser.add_argument("--chaos", default=None, metavar="PLAN",
                        help="'fleet-audit' node-fault plan, e.g. "
                             "'crash:1@180,stall:2@90+500,slow:0@10x4' "
                             "(crash:NODE@MS, stall:NODE@MS+DUR, "
                             "slow:NODE@MSxFACTOR; default none)")
    parser.add_argument("--slo", default=None, metavar="SPEC",
                        help="'fleet-audit' SLO spec evaluated at end "
                             "of run, e.g. 'p99_verdict_ms=400,"
                             "max_unaudited=0.1'; a breach exits 4 "
                             "(flags still exit 1)")
    parser.add_argument("--covert", default=None, metavar="CHANNEL",
                        help="covert channel for 'audit' (and the "
                             "covert tenant of 'serve'; default ipctc "
                             "there, none for 'audit'); for 'exec', "
                             "sched/schedtc or mbox/mboxtc adds the "
                             "covert variant of that scenario")
    parser.add_argument("--scenario", default="all",
                        metavar="NAME",
                        help="'exec' scenario to run: pipeline, sched, "
                             "mbox, or all (default all)")
    parser.add_argument("--tamper", action="store_true",
                        help="'audit' only: rewrite a committed log "
                             "entry after attestation")
    parser.add_argument("--store", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="persist run artifacts to a run store at "
                             "DIR (default: REPRO_RUNSTORE or "
                             ".repro-runs)")
    parser.add_argument("--profile", action="store_true",
                        help="'trace' only: also run the cycle-exact "
                             "stack profiler (pure observer — the "
                             "Chrome trace and every verdict stay "
                             "byte-identical)")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:", ", ".join(EXPERIMENTS), "| all")
        return 0
    selected = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("available:", ", ".join(EXPERIMENTS), file=sys.stderr)
        return 2
    status = 0
    for name in selected:
        started = time.time()
        result = EXPERIMENTS[name](args)
        print(f"  [{name}: {time.time() - started:.1f}s]")
        status = max(status, int(result or 0))
    return status


if __name__ == "__main__":
    sys.exit(main())

"""Interactive reproduction of the paper's experiments.

Usage::

    python -m repro.tools.reproduce --list
    python -m repro.tools.reproduce fig2 fig7
    python -m repro.tools.reproduce all --runs 6 --requests 20

Each experiment is a quick, parameterizable version of the corresponding
bench in ``benchmarks/`` (the benches add shape assertions and fixed
parameters; this tool is for exploration).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiment import (NfsTrafficModel, run_detector_matrix,
                                       matrix_as_table)
from repro.analysis.stats import spread_percent
from repro.apps import (build_kernel_program, build_nfs_program,
                        build_nfs_workload, compile_app, zero_array_source)
from repro.channels import all_channels
from repro.core.tdr import play, replay_naive, round_trip
from repro.determinism import SplitMix64
from repro.detectors import all_statistical_detectors
from repro.machine import MachineConfig
from repro.machine.config import RuntimeKind
from repro.machine.noise import scenario_config
from repro.obs import (MITIGATED_SOURCES, Observability,
                       format_attribution_table)
from repro.obs.metrics import MetricsRegistry, phase_report, time_phase


def _print_phase_report(registry) -> None:
    rows = phase_report(registry)
    if not rows:
        return
    print()
    print(f"  {'phase':24s} {'runs':>5s} {'wall-clock':>11s}")
    for name, count, total in rows:
        print(f"  {name:24s} {count:>5d} {total:>10.2f}s")


def _banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def run_fig2(args) -> None:
    _banner("Figure 2 — time noise of zeroing an array")
    program = compile_app(zero_array_source(elements=8192))
    for scenario in ("user-noisy", "user-quiet", "kernel", "kernel-quiet"):
        config = scenario_config(scenario)
        times = [float(play(program, config, seed=s).total_cycles)
                 for s in range(args.runs)]
        print(f"  {scenario:14s} variance = {spread_percent(times):8.2f}%")


def run_fig3(args) -> None:
    _banner("Figure 3 — naive replay vs play")
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(33),
                                  num_requests=args.requests)
    outcome = round_trip(program, MachineConfig(), workload=workload)
    naive = replay_naive(program, outcome.play.log, MachineConfig(),
                         seed=7)
    print(f"  play:         {outcome.play.total_ns / 1e6:9.2f} ms")
    print(f"  TDR replay:   {outcome.replay.total_ns / 1e6:9.2f} ms "
          f"(error {outcome.audit.total_time_error * 100:.3f}%)")
    print(f"  naive replay: {naive.total_ns / 1e6:9.2f} ms "
          f"(wait-skipping + injection overhead)")


def run_table2(args) -> None:
    _banner("Table 2 — SciMark: Sanity / Oracle-INT / Oracle-JIT")
    clean = scenario_config("clean")
    print(f"  {'kernel':8s} {'Sanity':>9s} {'INT':>6s} {'JIT':>9s}")
    for name in ("sor", "smm", "mc", "fft", "lu"):
        program = build_kernel_program(name)
        sanity = play(program, scenario_config("sanity"),
                      seed=0).total_cycles
        oint = play(program, clean.with_overrides(name="i"),
                    seed=0).total_cycles
        ojit = play(program, clean.with_overrides(
            name="j", runtime=RuntimeKind.ORACLE_JIT), seed=0).total_cycles
        print(f"  {name.upper():8s} {sanity / oint:>9.4f} {'1.0':>6s} "
              f"{ojit / oint:>9.4f}")


def run_fig6(args) -> None:
    _banner("Figure 6 — SciMark timing stability")
    print(f"  {'kernel':8s} {'dirty':>10s} {'clean':>10s} {'sanity':>10s}")
    for name in ("sor", "smm", "mc", "lu", "fft"):
        program = build_kernel_program(name)
        row = f"  {name.upper():8s}"
        for scenario in ("dirty", "clean", "sanity"):
            config = scenario_config(scenario)
            times = [float(play(program, config, seed=s).total_cycles)
                     for s in range(args.runs)]
            row += f" {spread_percent(times):>9.3f}%"
        print(row)


def run_fig7(args) -> None:
    _banner("Figure 7 / §6.4 — TDR replay accuracy")
    program = build_nfs_program()
    worst = 0.0
    for trace in range(args.runs):
        workload = build_nfs_workload(SplitMix64(500 + trace),
                                      num_requests=args.requests)
        outcome = round_trip(program, MachineConfig(), workload=workload,
                             play_seed=trace, replay_seed=9000 + trace)
        worst = max(worst, outcome.audit.max_rel_ipd_diff)
        print(f"  trace {trace}: total err "
              f"{outcome.audit.total_time_error * 100:6.3f}%  "
              f"max IPD err {outcome.audit.max_rel_ipd_diff * 100:6.3f}%")
    print(f"  worst IPD difference: {worst * 100:.3f}% (paper: 1.85%)")


def run_sec65(args) -> None:
    _banner("§6.5 — log size")
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(800),
                                  num_requests=args.requests)
    result = play(program, MachineConfig(), workload=workload, seed=0)
    log = result.log
    breakdown = log.size_breakdown()
    print(f"  {len(log)} events, {log.size_bytes()} bytes "
          f"({log.size_bytes() / len(result.tx):.1f} B/request)")
    print(f"  packets {breakdown['packet']} B, times {breakdown['time']} B")


def run_fig8(args) -> None:
    _banner("Figure 8 — detector AUC matrix (statistical detectors, "
            "synthetic traffic)")
    cells = run_detector_matrix(all_channels(), all_statistical_detectors,
                                model=NfsTrafficModel(),
                                num_training=30, num_test=args.runs * 4,
                                packets_per_trace=120, seed=2014,
                                jobs=args.jobs if args.jobs else 1)
    print(matrix_as_table(cells))
    print("  (run `pytest benchmarks/test_fig8_roc.py` for the VM-based "
          "Sanity-detector column)")


def run_chaos(args) -> None:
    _banner("Chaos matrix — resilient audit under injected faults")
    from repro.core.attestation import attest_execution
    from repro.core.replay_cache import ReplayCache
    from repro.core.resilience import audit_resilient
    from repro.faults import LogTransferChannel, standard_fault_kinds

    registry = MetricsRegistry()
    cache = ReplayCache(registry=registry)
    seed = args.chaos_seed
    program = build_nfs_program()
    workload = build_nfs_workload(SplitMix64(seed),
                                  num_requests=args.requests)
    with time_phase("chaos.baseline-play", registry):
        observed = play(program, MachineConfig(), workload=workload, seed=0)
    data = observed.log.to_bytes()
    key = b"chaos-machine-key"
    auth = attest_execution(observed.log, key)
    print(f"  baseline: {len(observed.tx)} tx, {len(observed.log)} log "
          f"entries, {len(data)} bytes (seed {seed})")
    print(f"  {'fault':20s} {'sev':>3s} {'classification':18s} "
          f"{'coverage':>8s} {'consistent':>10s}")
    with time_phase("chaos.fault-sweep", registry):
        for severity in range(1, args.severities + 1):
            for plan in standard_fault_kinds(severity):
                damaged = plan.apply(data,
                                     SplitMix64(seed).fork(
                                         f"{plan.name}:{severity}"))
                outcome = audit_resilient(program, observed, damaged,
                                          authenticator=auth,
                                          signing_key=key,
                                          replay_cache=cache)
                verdict = ("-" if outcome.consistent is None
                           else str(outcome.consistent))
                print(f"  {plan.name:20s} {severity:>3d} "
                      f"{outcome.classification.value:18s} "
                      f"{outcome.coverage:>8.2f} {verdict:>10s}")
    with time_phase("chaos.transfer-sweep", registry):
        for drop in (0.1, 0.2, 0.6, 0.9):
            channel = LogTransferChannel(drop_rate=drop, mtu_bytes=512,
                                         max_retries=6)
            shipped = channel.transfer(data,
                                       SplitMix64(seed).fork(f"xfer:{drop}"))
            outcome = audit_resilient(program, observed, transfer=shipped,
                                      replay_cache=cache)
            print(f"  transfer drop={drop:.1f}: "
                  f"{'delivered' if shipped.delivered else 'degraded':10s} "
                  f"{shipped.retransmissions:3d} retx -> "
                  f"{outcome.classification.value} "
                  f"(coverage {outcome.coverage:.2f})")
    print(f"\n  replay cache: {cache.hits} hits, {cache.misses} misses")
    _print_phase_report(registry)


def run_trace(args) -> None:
    _banner("Trace — cycle attribution, opcode profile, Chrome trace")
    obs = Observability()
    program = build_nfs_program()
    noisy = scenario_config("dirty")
    with time_phase("trace.round-trip", obs.registry):
        outcome = round_trip(program, noisy,
                             workload=build_nfs_workload(
                                 SplitMix64(77),
                                 num_requests=args.requests),
                             obs=obs)
    print(format_attribution_table(
        outcome.play.ledger, outcome.play.total_cycles,
        title=f"play ({noisy.name}, {outcome.play.total_cycles:,} cycles)"))
    print()
    print(format_attribution_table(
        outcome.replay.ledger, outcome.replay.total_cycles,
        title=f"replay ({noisy.name}, "
              f"{outcome.replay.total_cycles:,} cycles)"))

    sanity = scenario_config("sanity")
    with time_phase("trace.clean-play", obs.registry):
        clean = play(program, sanity,
                     workload=build_nfs_workload(SplitMix64(77),
                                                 num_requests=args.requests),
                     seed=0, obs=obs)
    print()
    print(format_attribution_table(
        clean.ledger, clean.total_cycles,
        title=f"play ({sanity.name}, {clean.total_cycles:,} cycles)"))
    leaked = sum(clean.ledger.get(s, 0) for s in MITIGATED_SOURCES)
    print(f"  mitigated sources ({', '.join(MITIGATED_SOURCES)}): "
          f"{leaked:,} cycles"
          + ("  [Table 1: fully mitigated]" if leaked == 0 else ""))

    if outcome.play.opcodes:
        top = sorted(outcome.play.opcodes.items(),
                     key=lambda kv: (-kv[1], kv[0]))[:8]
        print()
        print("  sampled opcode profile (play, top 8):")
        for op, count in top:
            print(f"    {op:12s} {count:>8,} samples")

    obs.tracer.write_chrome_trace(args.trace_out)
    print(f"\n  wrote {len(obs.tracer)} trace events to {args.trace_out} "
          f"(load in chrome://tracing or https://ui.perfetto.dev)")
    _print_phase_report(obs.registry)


def run_fleet_exp(args) -> None:
    _banner("Fleet — parallel experiment execution")
    from repro.analysis.parallel import (MachineSpec, default_jobs,
                                         run_fleet)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    config = MachineConfig()
    specs = [MachineSpec(program="nfs", config=config, seed=seed,
                         workload=f"nfs:{7000 + seed}:{args.requests}")
             for seed in range(args.runs)]

    started = time.time()
    serial = run_fleet(specs, jobs=1)
    serial_s = time.time() - started
    started = time.time()
    parallel = run_fleet(specs, jobs=jobs)
    parallel_s = time.time() - started

    identical = all(
        a.total_cycles == b.total_cycles and a.tx == b.tx
        for a, b in zip(serial, parallel))
    print(f"  {len(specs)} NFS plays x {args.requests} requests")
    print(f"  serial (jobs=1):   {serial_s:7.2f}s")
    print(f"  fleet  (jobs={jobs}):  {parallel_s:7.2f}s  "
          f"speedup {serial_s / parallel_s:.2f}x on "
          f"{default_jobs()} CPUs")
    print(f"  results bit-identical: {identical}")
    for spec, result in zip(specs[:4], parallel[:4]):
        print(f"    seed {spec.seed}: {result.total_cycles:,} cycles, "
              f"{len(result.tx)} tx")


EXPERIMENTS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table2": run_table2,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "sec65": run_sec65,
    "fig8": run_fig8,
    "chaos": run_chaos,
    "trace": run_trace,
    "fleet": run_fleet_exp,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.reproduce",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (or 'all')")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--runs", type=int, default=6,
                        help="repetitions per configuration (default 6)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for fleet-aware "
                             "experiments (default: REPRO_JOBS or the "
                             "CPU count for 'fleet', serial elsewhere)")
    parser.add_argument("--requests", type=int, default=25,
                        help="NFS requests per trace (default 25)")
    parser.add_argument("--chaos-seed", type=int, default=2014,
                        help="seed for the chaos fault sweep "
                             "(default 2014)")
    parser.add_argument("--severities", type=int, default=3,
                        help="fault severities swept by 'chaos' "
                             "(default 3)")
    parser.add_argument("--trace-out", default="tdr-trace.json",
                        help="Chrome trace file written by 'trace' "
                             "(default tdr-trace.json)")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:", ", ".join(EXPERIMENTS), "| all")
        return 0
    selected = list(EXPERIMENTS) if args.experiments == ["all"] \
        else args.experiments
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("available:", ", ".join(EXPERIMENTS), file=sys.stderr)
        return 2
    for name in selected:
        started = time.time()
        EXPERIMENTS[name](args)
        print(f"  [{name}: {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

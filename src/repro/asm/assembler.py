"""Assembler: textual listings → :class:`repro.vm.program.Program`.

Syntax
------

::

    ; comments run to end of line
    .class Point x y          ; record type with two fields
    .global counter           ; module-level variable
    .func main 0 2            ; name, num_params, num_locals
        iconst 10
        store 0
    loop:
        load 0
        ifle done
        load 0
        iconst 1
        isub
        store 0
        goto loop
    done:
        ret
    .catch loop done handler  ; exception table entry (labels)

Operand resolution:

* branch targets and ``.catch`` ranges are labels;
* ``call f`` takes a function name, ``native n`` a native name (resolved
  through the ``natives`` object's ``native_index``);
* ``gload``/``gstore`` take a global name (or a raw index);
* ``newobj`` takes a class name; ``getfield``/``putfield`` take
  ``Class.field`` (or a raw offset);
* ``newarray`` takes ``i`` or ``f``.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.vm.isa import OPERAND_KIND, Op
from repro.vm.program import ClassDef, ExceptionHandler, Function, Program

_MNEMONICS = {op.name.lower(): op for op in Op}


class _PendingFunction:
    def __init__(self, name: str, num_params: int, num_locals: int) -> None:
        self.name = name
        self.num_params = num_params
        self.num_locals = num_locals
        self.ops: list[int] = []
        self.args: list = []
        self.labels: dict[str, int] = {}
        # (pc, label, line) for branch fixups; (start, end, handler, line)
        # label triples for catch fixups.
        self.branch_fixups: list[tuple[int, str, int]] = []
        self.catch_fixups: list[tuple[str, str, str, int]] = []
        # (pc, name, line) fixups resolved at link time.
        self.call_fixups: list[tuple[int, str, int]] = []


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"expected integer, got '{token}'", line)


def _parse_float(token: str, line: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise AssemblerError(f"expected float, got '{token}'", line)


def assemble(text: str, natives=None, entry: str = "main") -> Program:
    """Assemble ``text`` into a linked :class:`Program`.

    ``natives`` must expose ``native_index(name) -> int`` when the listing
    uses the ``native`` instruction (a :class:`repro.vm.NativeRegistry` or
    a :class:`repro.vm.NullPlatform`).
    """
    classes: list[ClassDef] = []
    class_by_name: dict[str, ClassDef] = {}
    global_names: list[str] = []
    functions: list[_PendingFunction] = []
    current: _PendingFunction | None = None

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue

        # Labels may prefix an instruction on the same line.
        while ":" in line.split()[0]:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"bad label '{label}'", line_no)
            if current is None:
                raise AssemblerError("label outside a function", line_no)
            if label in current.labels:
                raise AssemblerError(f"duplicate label '{label}'", line_no)
            current.labels[label] = len(current.ops)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue

        tokens = line.split()
        head = tokens[0].lower()

        if head == ".class":
            if len(tokens) < 2:
                raise AssemblerError(".class needs a name", line_no)
            name = tokens[1]
            if name in class_by_name:
                raise AssemblerError(f"duplicate class '{name}'", line_no)
            class_def = ClassDef(name, tokens[2:])
            class_by_name[name] = class_def
            classes.append(class_def)
        elif head == ".global":
            if len(tokens) != 2:
                raise AssemblerError(".global needs exactly one name", line_no)
            if tokens[1] in global_names:
                raise AssemblerError(f"duplicate global '{tokens[1]}'",
                                     line_no)
            global_names.append(tokens[1])
        elif head == ".func":
            if len(tokens) != 4:
                raise AssemblerError(
                    ".func needs: name num_params num_locals", line_no)
            current = _PendingFunction(tokens[1],
                                       _parse_int(tokens[2], line_no),
                                       _parse_int(tokens[3], line_no))
            functions.append(current)
        elif head == ".catch":
            if current is None:
                raise AssemblerError(".catch outside a function", line_no)
            if len(tokens) != 4:
                raise AssemblerError(
                    ".catch needs: start_label end_label handler_label",
                    line_no)
            current.catch_fixups.append(
                (tokens[1], tokens[2], tokens[3], line_no))
        elif head in _MNEMONICS:
            if current is None:
                raise AssemblerError("instruction outside a function", line_no)
            op = _MNEMONICS[head]
            kind = OPERAND_KIND[op]
            operand_tokens = tokens[1:]
            if kind is None:
                if operand_tokens:
                    raise AssemblerError(
                        f"'{head}' takes no operand", line_no)
                arg = None
            else:
                if len(operand_tokens) != 1:
                    raise AssemblerError(
                        f"'{head}' needs exactly one operand", line_no)
                token = operand_tokens[0]
                if kind == "int":
                    arg = _parse_int(token, line_no)
                elif kind == "float":
                    arg = _parse_float(token, line_no)
                elif kind in ("slot",):
                    arg = _parse_int(token, line_no)
                elif kind == "global":
                    if token in global_names:
                        arg = global_names.index(token)
                    else:
                        arg = _parse_int(token, line_no)
                elif kind == "target":
                    current.branch_fixups.append(
                        (len(current.ops), token, line_no))
                    arg = 0  # patched below
                elif kind == "kind":
                    if token not in ("i", "f"):
                        raise AssemblerError(
                            f"newarray kind must be 'i' or 'f', got "
                            f"'{token}'", line_no)
                    arg = 0 if token == "i" else 1
                elif kind == "class":
                    if token not in class_by_name:
                        raise AssemblerError(
                            f"undefined class '{token}'", line_no)
                    arg = classes.index(class_by_name[token])
                elif kind == "field":
                    if "." in token:
                        class_name, _, field_name = token.partition(".")
                        if class_name not in class_by_name:
                            raise AssemblerError(
                                f"undefined class '{class_name}'", line_no)
                        try:
                            arg = class_by_name[class_name].field_offset(
                                field_name)
                        except Exception:
                            raise AssemblerError(
                                f"class '{class_name}' has no field "
                                f"'{field_name}'", line_no)
                    else:
                        arg = _parse_int(token, line_no)
                elif kind == "func":
                    current.call_fixups.append(
                        (len(current.ops), token, line_no))
                    arg = 0  # patched at link
                elif kind == "native":
                    if token.lstrip("-").isdigit():
                        # Raw index form, as the disassembler emits.
                        arg = _parse_int(token, line_no)
                        if arg < 0:
                            raise AssemblerError(
                                f"negative native index {arg}", line_no)
                    elif natives is None:
                        raise AssemblerError(
                            "listing uses natives but no registry was "
                            "provided", line_no)
                    else:
                        try:
                            arg = natives.native_index(token)
                        except Exception:
                            raise AssemblerError(
                                f"undefined native '{token}'", line_no)
                else:  # pragma: no cover - exhaustive
                    raise AssemblerError(
                        f"unhandled operand kind '{kind}'", line_no)
            current.ops.append(int(op))
            current.args.append(arg)
        else:
            raise AssemblerError(f"unknown mnemonic or directive '{head}'",
                                 line_no)

    if not functions:
        raise AssemblerError("no functions defined")

    # Resolve branch targets and exception tables.
    func_index = {f.name: i for i, f in enumerate(functions)}
    built: list[Function] = []
    for pending in functions:
        for pc, label, line_no in pending.branch_fixups:
            if label not in pending.labels:
                raise AssemblerError(f"undefined label '{label}'", line_no)
            pending.args[pc] = pending.labels[label]
        for pc, name, line_no in pending.call_fixups:
            if name not in func_index:
                raise AssemblerError(f"undefined function '{name}'", line_no)
            pending.args[pc] = func_index[name]
        handlers = []
        for start, end, handler, line_no in pending.catch_fixups:
            for label in (start, end, handler):
                if label not in pending.labels:
                    raise AssemblerError(f"undefined label '{label}'",
                                         line_no)
            handlers.append(ExceptionHandler(pending.labels[start],
                                             pending.labels[end],
                                             pending.labels[handler]))
        built.append(Function(pending.name, pending.num_params,
                              pending.num_locals, pending.ops, pending.args,
                              handlers))

    return Program(built, classes, global_names, entry=entry)

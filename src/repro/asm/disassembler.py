"""Disassembler: :class:`~repro.vm.program.Program` → readable listing.

Primarily a debugging aid and a round-trip test anchor for the assembler
and the MiniJ code generator.
"""

from __future__ import annotations

from repro.vm.isa import OPERAND_KIND, Op, opcode_name
from repro.vm.program import Function, Program


def _format_operand(program: Program, function: Function, op: Op, arg) -> str:
    kind = OPERAND_KIND[op]
    if kind is None:
        return ""
    if kind == "target":
        return f" L{arg}"
    if kind == "func":
        return f" {program.functions[arg].name}"
    if kind == "class":
        return f" {program.classes[arg].name}"
    if kind == "kind":
        return " i" if arg == 0 else " f"
    if kind == "global" and arg < len(program.global_names):
        return f" {program.global_names[arg]}"
    return f" {arg}"


def disassemble(program: Program) -> str:
    """Render a program as an annotated listing."""
    lines: list[str] = []
    for class_def in program.classes:
        lines.append(f".class {class_def.name} " + " ".join(class_def.fields))
    for name in program.global_names:
        lines.append(f".global {name}")
    for function in program.functions:
        lines.append(f".func {function.name} {function.num_params} "
                     f"{function.num_locals}")
        targets = {arg for op, arg in zip(function.ops, function.args)
                   if OPERAND_KIND[Op(op)] == "target"}
        for handler in function.handlers:
            targets.update((handler.start_pc, handler.end_pc,
                            handler.handler_pc))
        for pc, (op_value, arg) in enumerate(zip(function.ops,
                                                 function.args)):
            op = Op(op_value)
            prefix = f"L{pc}:" if pc in targets else "    "
            operand = _format_operand(program, function, op, arg)
            lines.append(f"{prefix} {opcode_name(op_value).lower()}{operand}")
        for handler in function.handlers:
            lines.append(f".catch L{handler.start_pc} L{handler.end_pc} "
                         f"L{handler.handler_pc}")
    return "\n".join(lines) + "\n"

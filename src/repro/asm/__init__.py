"""Textual assembler and disassembler for the Sanity VM."""

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble

__all__ = ["assemble", "disassemble"]

"""Deterministic fault injection for the audit pipeline.

The auditing story of §5.3 only works if the auditor survives hostile or
damaged inputs: the log comes from a machine that may be lying, over a
network that may be losing frames.  This package supplies the chaos half
of that hardening:

* :mod:`repro.faults.plans` — composable, seeded :class:`FaultPlan`
  damage models (bit flips, truncation, entry drop/duplication/reorder,
  header fuzzing) plus node-level failure schedules
  (:class:`NodeChaosPlan`: crash/stall/slow) for verifier-fleet chaos;
* :mod:`repro.faults.channel` — a lossy simulated log-transfer channel
  with bounded retransmission and exponential backoff.

Everything is driven by :class:`~repro.determinism.SplitMix64` streams:
a chaos run is reproducible from its seed.
"""

from repro.faults.channel import LogTransferChannel, TransferOutcome
from repro.faults.plans import (BitFlip, ComposedPlan, DropEntries,
                                DuplicateEntries, FaultPlan, HeaderFuzz,
                                NodeChaosPlan, NodeCrash, NodeSlow,
                                NodeStall, ReorderEntries, Truncate,
                                standard_fault_kinds)

__all__ = [
    "BitFlip",
    "ComposedPlan",
    "DropEntries",
    "DuplicateEntries",
    "FaultPlan",
    "HeaderFuzz",
    "LogTransferChannel",
    "NodeChaosPlan",
    "NodeCrash",
    "NodeSlow",
    "NodeStall",
    "ReorderEntries",
    "TransferOutcome",
    "Truncate",
    "standard_fault_kinds",
]

"""Composable, seeded fault plans for serialized event logs.

The auditor of §5.3 receives the log from a machine it does not trust,
over a network it does not control.  A :class:`FaultPlan` is a
deterministic model of one kind of damage that log can suffer in either
place; chaining plans with :meth:`FaultPlan.then` models compound damage.
Every plan draws from a caller-supplied
:class:`~repro.determinism.SplitMix64` stream, so a chaos run that found
a bug is reproducible from its seed alone.

Two families exist, distinguished by where the damage happens:

* **byte-level** plans (:class:`BitFlip`, :class:`Truncate`,
  :class:`HeaderFuzz`) damage the serialized form without understanding
  it — storage rot, a lossy transfer, a fuzzer.  The v2 wire format's
  per-entry CRC32 and whole-log digest catch these as
  :class:`~repro.errors.LogFormatError`.
* **entry-level** plans (:class:`DropEntries`, :class:`DuplicateEntries`,
  :class:`ReorderEntries`) model an *adversary with write access*: the
  log is rewritten with valid framing (CRCs and digest recomputed), so
  only the attestation chain of :mod:`repro.core.attestation` — or a
  divergent replay — can expose the edit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.log import EventLog
from repro.determinism import SplitMix64
from repro.errors import FaultPlanError

_HEADER_BYTES = 10  # magic + version + count


class FaultPlan(abc.ABC):
    """One deterministic, composable kind of damage to a serialized log."""

    #: Short identifier used in chaos-matrix output and fork labels.
    name: str = "fault"

    @abc.abstractmethod
    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        """Return the damaged form of ``data``; never mutates in place."""

    def apply_seeded(self, data: bytes, seed: int) -> bytes:
        """Apply with a fresh stream derived from ``seed``."""
        return self.apply(data, SplitMix64(seed).fork(self.name))

    def then(self, other: "FaultPlan") -> "ComposedPlan":
        """Compose: this plan's output feeds ``other``."""
        return ComposedPlan([self, other])


@dataclass
class ComposedPlan(FaultPlan):
    """Apply several plans in sequence, each on an independent stream."""

    plans: list[FaultPlan] = field(default_factory=list)
    name: str = "composed"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        for index, plan in enumerate(self.plans):
            data = plan.apply(data, rng.fork(f"{index}:{plan.name}"))
        return data

    def then(self, other: FaultPlan) -> "ComposedPlan":
        return ComposedPlan([*self.plans, other])


# -- byte-level damage ------------------------------------------------------


@dataclass
class BitFlip(FaultPlan):
    """Flip ``flips`` random bits anywhere in the serialized log."""

    flips: int = 1
    name: str = "bit-flip"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if self.flips < 0:
            raise FaultPlanError(f"negative flip count {self.flips}")
        if not data or self.flips == 0:
            return data
        damaged = bytearray(data)
        for _ in range(self.flips):
            position = rng.randint(0, len(damaged) - 1)
            damaged[position] ^= 1 << rng.randint(0, 7)
        return bytes(damaged)


@dataclass
class Truncate(FaultPlan):
    """Keep only the leading ``keep_fraction`` of the serialized bytes.

    Models an interrupted transfer or a partially-written log file; the
    exact cut point is drawn within the discarded region so repeated runs
    exercise different entry boundaries.
    """

    keep_fraction: float = 0.5
    name: str = "truncate"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if not 0.0 <= self.keep_fraction <= 1.0:
            raise FaultPlanError(
                f"keep fraction must be in [0, 1]: {self.keep_fraction}")
        if self.keep_fraction == 1.0 or not data:
            return data
        floor = int(len(data) * self.keep_fraction)
        # Jitter the cut by up to half an average entry so sweeps hit
        # header/body/CRC boundaries alike.
        cut = min(len(data) - 1, floor + rng.randint(0, 15))
        return data[:cut]


@dataclass
class HeaderFuzz(FaultPlan):
    """Randomize ``fuzzed_bytes`` bytes of the fixed log header."""

    fuzzed_bytes: int = 1
    name: str = "header-fuzz"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if self.fuzzed_bytes < 0:
            raise FaultPlanError(
                f"negative fuzz count {self.fuzzed_bytes}")
        if not data or self.fuzzed_bytes == 0:
            return data
        damaged = bytearray(data)
        region = min(_HEADER_BYTES, len(damaged))
        for _ in range(self.fuzzed_bytes):
            position = rng.randint(0, region - 1)
            damaged[position] = rng.randint(0, 255)
        return bytes(damaged)


# -- entry-level damage (adversarial rewrites) ------------------------------


def _parse_for_rewrite(data: bytes, plan_name: str) -> tuple[EventLog, int]:
    parse = EventLog.parse_prefix(data)
    if parse.error is not None:
        raise FaultPlanError(
            f"{plan_name} rewrites entries and needs a parseable log; "
            f"compose byte-level damage *after* it ({parse.error})")
    return parse.log, parse.version


@dataclass
class DropEntries(FaultPlan):
    """Silently delete ``count`` random entries, reframing the rest."""

    count: int = 1
    name: str = "drop-entries"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if self.count < 0:
            raise FaultPlanError(f"negative drop count {self.count}")
        log, version = _parse_for_rewrite(data, self.name)
        for _ in range(min(self.count, len(log.entries))):
            del log.entries[rng.randint(0, len(log.entries) - 1)]
        return log.to_bytes(version)


@dataclass
class DuplicateEntries(FaultPlan):
    """Replay-attack style: insert ``count`` duplicates of random entries.

    Each duplicate is inserted right after its original, so the
    instruction counts stay non-decreasing and the rewritten log passes
    every framing check.
    """

    count: int = 1
    name: str = "duplicate-entries"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if self.count < 0:
            raise FaultPlanError(f"negative duplicate count {self.count}")
        log, version = _parse_for_rewrite(data, self.name)
        if not log.entries:
            return log.to_bytes(version)
        for _ in range(self.count):
            position = rng.randint(0, len(log.entries) - 1)
            log.entries.insert(position + 1, log.entries[position])
        return log.to_bytes(version)


@dataclass
class ReorderEntries(FaultPlan):
    """Swap the *contents* of ``swaps`` adjacent entry pairs.

    The instruction counts stay in place (a careful adversary keeps the
    log monotonic so it still parses); only the event contents trade
    positions.  Detectable by the attestation chain or by a divergent
    replay, never by framing checks.
    """

    swaps: int = 1
    name: str = "reorder-entries"

    def apply(self, data: bytes, rng: SplitMix64) -> bytes:
        if self.swaps < 0:
            raise FaultPlanError(f"negative swap count {self.swaps}")
        log, version = _parse_for_rewrite(data, self.name)
        entries = log.entries
        if len(entries) < 2:
            return log.to_bytes(version)
        for _ in range(self.swaps):
            i = rng.randint(0, len(entries) - 2)
            first, second = entries[i], entries[i + 1]
            entries[i] = type(first)(second.kind, first.instr_count,
                                     payload=second.payload,
                                     value=second.value)
            entries[i + 1] = type(second)(first.kind, second.instr_count,
                                          payload=first.payload,
                                          value=first.value)
        return log.to_bytes(version)


# -- node-level failure plans (verifier-fleet chaos) ------------------------
#
# Where the plans above damage the *data* in flight, these damage the
# *infrastructure*: one verifier node of a sharded fleet crashes, stalls,
# or slows at a known virtual time.  They carry no randomness of their
# own — a plan is a literal schedule, so a fleet run that includes one
# stays a pure function of (seed, roster, policy, topology, plan).  The
# seeded constructor derives such a schedule from a SplitMix64 stream
# for chaos sweeps.


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` fails permanently at virtual time ``at_ms``."""

    node: int
    at_ms: float
    kind: str = field(default="crash", init=False)


@dataclass(frozen=True)
class NodeStall:
    """Node ``node`` stops heartbeating and dispatching for a while.

    In-flight audits still complete (the worker model keeps running);
    only new dispatch and the heartbeat stream pause for
    ``duration_ms``.
    """

    node: int
    at_ms: float
    duration_ms: float = 300.0
    kind: str = field(default="stall", init=False)


@dataclass(frozen=True)
class NodeSlow:
    """Node ``node`` serves audits ``factor``× slower from ``at_ms`` on."""

    node: int
    at_ms: float
    factor: float = 4.0
    kind: str = field(default="slow", init=False)


NodeFault = NodeCrash | NodeStall | NodeSlow


@dataclass(frozen=True)
class NodeChaosPlan:
    """A literal schedule of node-level failures for one fleet run."""

    faults: tuple = ()
    name: str = "node-chaos"

    def __post_init__(self) -> None:
        for fault in self.faults:
            if fault.at_ms < 0:
                raise FaultPlanError(
                    f"fault time must be >= 0 ms: {fault}")
            if fault.node < 0:
                raise FaultPlanError(f"node index must be >= 0: {fault}")

    def ordered(self) -> "list[NodeFault]":
        """Faults in activation order (time, node, kind) — deterministic."""
        return sorted(self.faults,
                      key=lambda f: (f.at_ms, f.node, f.kind))

    def for_fleet(self, num_nodes: int) -> "list[NodeFault]":
        """The ordered faults that target nodes this fleet actually has.

        Out-of-range targets are skipped rather than rejected so one
        plan string can drive a 1→N node sweep.
        """
        return [f for f in self.ordered() if f.node < num_nodes]

    @property
    def spec(self) -> str:
        """The parseable spelling of this plan (inverse of :meth:`parse`)."""
        parts = []
        for fault in self.ordered():
            if fault.kind == "crash":
                parts.append(f"crash:{fault.node}@{fault.at_ms:g}")
            elif fault.kind == "stall":
                parts.append(f"stall:{fault.node}@{fault.at_ms:g}"
                             f"+{fault.duration_ms:g}")
            else:
                parts.append(f"slow:{fault.node}@{fault.at_ms:g}"
                             f"x{fault.factor:g}")
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "NodeChaosPlan":
        """Parse a CLI chaos spec.

        Grammar (comma-separated):
        ``crash:NODE@MS`` | ``stall:NODE@MS+DURATION`` |
        ``slow:NODE@MS xFACTOR`` (no space) — e.g.
        ``crash:1@800,stall:2@400+300,slow:0@200x4``.
        """
        faults = []
        for part in filter(None, (p.strip() for p in spec.split(","))):
            try:
                kind, rest = part.split(":", 1)
                node_text, timing = rest.split("@", 1)
                node = int(node_text)
                if kind == "crash":
                    faults.append(NodeCrash(node, float(timing)))
                elif kind == "stall":
                    at_text, duration = timing.split("+", 1)
                    faults.append(NodeStall(node, float(at_text),
                                            duration_ms=float(duration)))
                elif kind == "slow":
                    at_text, factor = timing.split("x", 1)
                    faults.append(NodeSlow(node, float(at_text),
                                           factor=float(factor)))
                else:
                    raise ValueError(f"unknown node fault kind '{kind}'")
            except ValueError as exc:
                raise FaultPlanError(
                    f"bad node chaos spec '{part}': {exc} (expected "
                    "crash:N@MS, stall:N@MS+DUR, or slow:N@MSxFACTOR"
                    ")") from exc
        return cls(faults=tuple(faults), name=f"parsed:{spec}")

    @classmethod
    def seeded(cls, seed: int, num_nodes: int, horizon_ms: float,
               events: int = 2) -> "NodeChaosPlan":
        """Derive a reproducible plan from a seed (chaos-sweep axis)."""
        if num_nodes < 1:
            raise FaultPlanError(f"need >= 1 node, got {num_nodes}")
        if events < 0:
            raise FaultPlanError(f"negative event count {events}")
        rng = SplitMix64(seed).fork("node-chaos")
        kinds = ("crash", "stall", "slow")
        faults = []
        for index in range(events):
            stream = rng.fork(f"event:{index}")
            kind = kinds[stream.randint(0, len(kinds) - 1)]
            node = stream.randint(0, num_nodes - 1)
            at_ms = round(stream.random() * max(1.0, horizon_ms), 1)
            if kind == "crash":
                faults.append(NodeCrash(node, at_ms))
            elif kind == "stall":
                faults.append(NodeStall(
                    node, at_ms,
                    duration_ms=50.0 * stream.randint(2, 8)))
            else:
                faults.append(NodeSlow(
                    node, at_ms, factor=float(stream.randint(2, 6))))
        return cls(faults=tuple(faults), name=f"seeded:{seed}")


def standard_fault_kinds(severity: int) -> "list[FaultPlan]":
    """One plan of each kind at the given severity (chaos-matrix axis)."""
    if severity < 1:
        raise FaultPlanError(f"severity must be >= 1: {severity}")
    keep = max(0.05, 1.0 - 0.3 * severity)
    return [
        BitFlip(flips=severity),
        Truncate(keep_fraction=keep),
        HeaderFuzz(fuzzed_bytes=severity),
        DropEntries(count=severity),
        DuplicateEntries(count=severity),
        ReorderEntries(swaps=severity),
    ]

"""A lossy, retrying log-transfer channel over a WAN link.

The audited machine ships its event log to the auditor (§5.3) across a
real network.  This module simulates that shipment: the serialized log is
framed into MTU-sized chunks and sent over a
:class:`~repro.net.link.LossyWanLink`; each lost frame is retransmitted
with exponential backoff until a per-frame retry budget is exhausted.  A
frame that exhausts its budget ends the transfer — what arrived is a
contiguous *prefix* of the log, exactly the shape
:func:`repro.core.resilience.audit_resilient` knows how to salvage.

Everything is driven by a caller-supplied
:class:`~repro.determinism.SplitMix64`, so a transfer that degraded in an
interesting way is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.determinism import SplitMix64
from repro.net.link import LossyWanLink, WanLink


@dataclass(frozen=True)
class TransferOutcome:
    """What one simulated log transfer delivered, and at what cost."""

    delivered: bool          #: did every frame arrive within budget?
    data: bytes              #: contiguous prefix that made it across
    total_frames: int
    frames_delivered: int
    transmissions: int       #: frames sent, including retransmissions
    retransmissions: int
    elapsed_ms: float        #: propagation + jitter + backoff time
    drop_rate: float         #: the link's configured loss probability

    @property
    def degraded(self) -> bool:
        """True when the retry budget could not deliver the whole log."""
        return not self.delivered


class LogTransferChannel:
    """Frame, send, and retransmit a serialized log across a lossy link."""

    def __init__(self, link: WanLink | None = None,
                 drop_rate: float = 0.0, mtu_bytes: int = 1024,
                 max_retries: int = 8, backoff_base_ms: float = 5.0,
                 backoff_factor: float = 2.0,
                 backoff_cap_ms: float = 500.0) -> None:
        if link is None:
            link = LossyWanLink(drop_rate=drop_rate)
        if mtu_bytes <= 0:
            raise ValueError(f"MTU must be positive: {mtu_bytes}")
        if max_retries < 0:
            raise ValueError(f"negative retry budget: {max_retries}")
        if backoff_base_ms < 0 or backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and "
                             "non-shrinking")
        self.link = link
        self.mtu_bytes = mtu_bytes
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_factor = backoff_factor
        self.backoff_cap_ms = backoff_cap_ms

    def _backoff_ms(self, attempt: int) -> float:
        """Delay before retransmission ``attempt`` (1-based)."""
        return min(self.backoff_cap_ms,
                   self.backoff_base_ms
                   * self.backoff_factor ** (attempt - 1))

    def transfer(self, data: bytes, rng: SplitMix64) -> TransferOutcome:
        """Ship ``data`` across the link; never raises on loss."""
        drop_rate = getattr(self.link, "drop_rate", 0.0)
        frames = [data[i:i + self.mtu_bytes]
                  for i in range(0, len(data), self.mtu_bytes)] or [b""]
        clock_ms = 0.0
        received: list[bytes] = []
        transmissions = 0
        retransmissions = 0
        for frame in frames:
            attempt = 0
            while True:
                transmissions += 1
                clock_ms = self.link.deliver_ms(clock_ms, rng)
                if self.link.delivers(rng):
                    received.append(frame)
                    break
                attempt += 1
                if attempt > self.max_retries:
                    # Budget exhausted: the transfer stops here and the
                    # auditor gets the contiguous prefix that arrived.
                    return TransferOutcome(
                        delivered=False, data=b"".join(received),
                        total_frames=len(frames),
                        frames_delivered=len(received),
                        transmissions=transmissions,
                        retransmissions=retransmissions,
                        elapsed_ms=clock_ms, drop_rate=drop_rate)
                retransmissions += 1
                clock_ms += self._backoff_ms(attempt)
        return TransferOutcome(
            delivered=True, data=b"".join(received),
            total_frames=len(frames), frames_delivered=len(frames),
            transmissions=transmissions,
            retransmissions=retransmissions,
            elapsed_ms=clock_ms, drop_rate=drop_rate)

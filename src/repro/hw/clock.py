"""The virtual cycle clock.

All timing in the simulator is expressed in integer *cycles* of the timed
core.  A :class:`VirtualClock` is the single time authority of a machine:
hardware components charge cycles to it, and the conversion to wall-clock
nanoseconds happens only at the boundary (trace export, ``nanoTime``).

Keeping time integral is what makes the determinism invariant checkable:
with all noise sources disabled, two executions of the same program must
produce *bit-identical* cycle counts.  The cycle→nanosecond conversion is
therefore done with exact rational arithmetic (``cycles * 10^9 /
frequency`` as integers, rounded once at the boundary) rather than a
precomputed float factor, so long runs never accumulate drift: at 3 Hz,
3 cycles is *exactly* 1e9 ns, not 999999999.99999994.

Cycle *attribution* is the observability layer's job: attach a
:class:`repro.obs.ledger.CycleLedger` and every charge is tagged with the
source that caused it (cache, TLB, interrupt, covert, ...).  With no
ledger attached the accounting costs one ``is None`` check per charge.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import HardwareConfigError


class VirtualClock:
    """Monotonic integer cycle counter with a cycle→nanosecond conversion.

    Parameters
    ----------
    frequency_hz:
        Nominal frequency of the timed core.  The paper's testbed ran at
        3.40 GHz (Intel i7-4770); that is the default.
    """

    __slots__ = ("frequency_hz", "_cycles", "_ns_num", "_ns_den", "_ledger")

    def __init__(self, frequency_hz: float = 3.4e9) -> None:
        if frequency_hz <= 0:
            raise HardwareConfigError(f"frequency must be positive: {frequency_hz}")
        self.frequency_hz = frequency_hz
        # ns-per-cycle as an exact rational: 10^9 / frequency.
        ratio = Fraction(1_000_000_000) / Fraction(frequency_hz)
        self._ns_num = ratio.numerator
        self._ns_den = ratio.denominator
        self._cycles = 0
        self._ledger = None

    @property
    def cycles(self) -> int:
        """Elapsed cycles since the clock was created or reset."""
        return self._cycles

    @property
    def ledger(self):
        """The attached cycle-attribution ledger, if any."""
        return self._ledger

    @property
    def ns_ratio(self) -> tuple[int, int]:
        """Exact ns-per-cycle rational as ``(numerator, denominator)``.

        Consumers that convert cycle stamps outside the clock (e.g.
        ``ExecutionResult.tx_times_ms``) use this so every conversion is
        a single correctly rounded division, never a float scale.
        """
        return self._ns_num, self._ns_den

    def attach_ledger(self, ledger) -> None:
        """Route every subsequent charge through ``ledger.charge``."""
        self._ledger = ledger

    def detach_ledger(self) -> None:
        self._ledger = None

    def advance(self, cycles: int, source: str = "other") -> None:
        """Charge ``cycles`` (a non-negative int) to the clock.

        ``source`` tags the charge for the attribution ledger; untagged
        call sites land in the ``"other"`` bucket so ledger totals always
        sum to :attr:`cycles`.
        """
        if not isinstance(cycles, int):
            raise TypeError(f"cycles must be int, not "
                            f"{type(cycles).__name__}: fractional cycles "
                            f"would reintroduce clock drift")
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._cycles += cycles
        if self._ledger is not None:
            self._ledger.charge(source, cycles)

    def now_ns(self) -> float:
        """Current time in nanoseconds at the nominal frequency.

        Computed as an exact integer product with a single correctly
        rounded division at the end, so the result is the closest float
        to the true value regardless of how many cycles accumulated.
        """
        return self._cycles * self._ns_num / self._ns_den

    def now_ns_exact(self) -> Fraction:
        """Current time in nanoseconds as an exact rational."""
        return Fraction(self._cycles * self._ns_num, self._ns_den)

    def now_ms(self) -> float:
        """Current time in milliseconds at the nominal frequency."""
        return self._cycles * self._ns_num / (self._ns_den * 1_000_000)

    def cycles_for_ns(self, ns: float) -> int:
        """Number of whole cycles covering ``ns`` nanoseconds.

        Exact rational arithmetic: the float ``ns`` is taken at face
        value (every float is an exact rational) and the division by the
        ns-per-cycle ratio is performed without intermediate rounding.
        """
        if ns <= 0:
            return 0
        return max(0, round(Fraction(ns) * self._ns_den / self._ns_num))

    def cycles_for_ms(self, ms: float) -> int:
        """Number of whole cycles covering ``ms`` milliseconds."""
        return self.cycles_for_ns(ms * 1e6)

    def reset(self) -> None:
        """Rewind to cycle zero (used between independent executions)."""
        self._cycles = 0
        if self._ledger is not None:
            self._ledger.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(cycles={self._cycles}, f={self.frequency_hz:.3g} Hz)"

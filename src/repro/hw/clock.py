"""The virtual cycle clock.

All timing in the simulator is expressed in integer *cycles* of the timed
core.  A :class:`VirtualClock` is the single time authority of a machine:
hardware components charge cycles to it, and the conversion to wall-clock
nanoseconds happens only at the boundary (trace export, ``nanoTime``).

Keeping time integral is what makes the determinism invariant checkable:
with all noise sources disabled, two executions of the same program must
produce *bit-identical* cycle counts.
"""

from __future__ import annotations

from repro.errors import HardwareConfigError


class VirtualClock:
    """Monotonic integer cycle counter with a cycle→nanosecond conversion.

    Parameters
    ----------
    frequency_hz:
        Nominal frequency of the timed core.  The paper's testbed ran at
        3.40 GHz (Intel i7-4770); that is the default.
    """

    __slots__ = ("frequency_hz", "_cycles", "_ns_per_cycle")

    def __init__(self, frequency_hz: float = 3.4e9) -> None:
        if frequency_hz <= 0:
            raise HardwareConfigError(f"frequency must be positive: {frequency_hz}")
        self.frequency_hz = frequency_hz
        self._ns_per_cycle = 1e9 / frequency_hz
        self._cycles = 0

    @property
    def cycles(self) -> int:
        """Elapsed cycles since the clock was created or reset."""
        return self._cycles

    def advance(self, cycles: int) -> None:
        """Charge ``cycles`` to the clock.  Negative charges are a bug."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self._cycles += cycles

    def now_ns(self) -> float:
        """Current time in nanoseconds at the nominal frequency."""
        return self._cycles * self._ns_per_cycle

    def now_ms(self) -> float:
        """Current time in milliseconds at the nominal frequency."""
        return self._cycles * self._ns_per_cycle * 1e-6

    def cycles_for_ns(self, ns: float) -> int:
        """Number of whole cycles covering ``ns`` nanoseconds."""
        return max(0, round(ns / self._ns_per_cycle))

    def cycles_for_ms(self, ms: float) -> int:
        """Number of whole cycles covering ``ms`` milliseconds."""
        return self.cycles_for_ns(ms * 1e6)

    def reset(self) -> None:
        """Rewind to cycle zero (used between independent executions)."""
        self._cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(cycles={self._cycles}, f={self.frequency_hz:.3g} Hz)"

"""Network interface model.

The NIC belongs to the supporting core's world (§3.3): packet DMA never
touches the timed core directly, but it does raise the shared-bus traffic
level.  Arrival times are *external* inputs expressed in timed-core cycles;
during play they come from the simulated network/client, during replay the
recorded log takes their place (the NIC is then unused on the replay side).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.obs.ledger import Source


@dataclass(order=True)
class _QueuedPacket:
    arrival_cycle: int
    seq: int
    payload: bytes = field(compare=False)


class Nic:
    """A 1 Gbps-class NIC with an arrival queue in virtual time."""

    #: Bus traffic contributed by one packet DMA (decays at the next poll).
    DMA_TRAFFIC = 0.15

    #: The NIC never charges the timed core directly — its DMA shows up as
    #: shared-bus contention, so its ledger bucket is the bus.
    LEDGER_SOURCE = Source.BUS

    def __init__(self) -> None:
        self._rx: list[_QueuedPacket] = []
        self._seq = 0
        self.tx_packets: list[tuple[int, bytes]] = []
        self.rx_delivered = 0

    def schedule_rx(self, arrival_cycle: int, payload: bytes) -> None:
        """Enqueue a packet to arrive at the given virtual time."""
        if arrival_cycle < 0:
            raise ValueError(f"negative arrival cycle: {arrival_cycle}")
        heapq.heappush(self._rx,
                       _QueuedPacket(arrival_cycle, self._seq, payload))
        self._seq += 1

    def poll_rx(self, now_cycles: int) -> list[bytes]:
        """Pop every packet whose arrival time has passed."""
        arrived: list[bytes] = []
        while self._rx and self._rx[0].arrival_cycle <= now_cycles:
            arrived.append(heapq.heappop(self._rx).payload)
            self.rx_delivered += 1
        return arrived

    def next_arrival_cycle(self) -> int | None:
        """Arrival time of the earliest pending packet, if any."""
        if not self._rx:
            return None
        return self._rx[0].arrival_cycle

    def transmit(self, now_cycles: int, payload: bytes) -> None:
        """Record an outgoing packet with its transmission time."""
        self.tx_packets.append((now_cycles, payload))

    @property
    def pending_rx(self) -> int:
        return len(self._rx)

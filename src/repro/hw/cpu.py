"""CPU cycle-cost model, frequency scaling, and speculation noise.

Two of the paper's noise sources live here (Table 1, "CPU features"):

* **Frequency scaling / TurboBoost** — the effective speed of the core
  changes under OS/hardware control.  We model it as a per-quantum
  multiplicative factor on instruction cost, re-drawn from a noise RNG
  every ``freq_quantum`` instructions.  Sanity disables it in the BIOS
  (§4.2), which pins the factor to 1.0.
* **Speculative execution / prefetching** — "we do not know a way to
  reproduce this behavior exactly" (§1).  We model it as a small
  per-instruction stochastic cost perturbation.  Disabling the dynamic
  optimizations *reduces* its scale but cannot eliminate it; this is the
  irreducible residual that, together with bus contention, bounds replay
  accuracy near the paper's 1.85%.

The same module also hosts the three runtime cost tables used by the
Table 2 / Fig 6 experiments: ``SANITY`` (our TDR VM), ``ORACLE_INT``
(a conventional interpreter without TDR overheads), and ``ORACLE_JIT``
(a JIT whose hot code is an order of magnitude cheaper per bytecode).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError
from repro.obs.ledger import Source


class CostClass(enum.IntEnum):
    """Coarse instruction classes with distinct base costs."""

    CONST = 0
    MOVE = 1
    ALU = 2
    MUL = 3
    DIV = 4
    FPU = 5
    FPU_DIV = 6
    FPU_MATH = 7  # sqrt/sin/cos library calls
    BRANCH = 8
    CALL = 9
    RET = 10
    MEM = 11
    ALLOC = 12
    NATIVE = 13
    SYNC = 14


#: Base cycle costs of an interpreted bytecode on the timed core.  These
#: are per-*bytecode* costs (an interpreter executes tens of host
#: instructions per bytecode), loosely calibrated so relative kernel
#: runtimes look like an interpreter's.
INTERPRETER_COSTS: dict[CostClass, int] = {
    CostClass.CONST: 12,
    CostClass.MOVE: 12,
    CostClass.ALU: 14,
    CostClass.MUL: 18,
    CostClass.DIV: 48,
    CostClass.FPU: 22,
    CostClass.FPU_DIV: 60,
    CostClass.FPU_MATH: 110,
    CostClass.BRANCH: 14,
    CostClass.CALL: 60,
    CostClass.RET: 40,
    CostClass.MEM: 16,
    CostClass.ALLOC: 160,
    CostClass.NATIVE: 120,
    CostClass.SYNC: 30,
}

#: JIT-compiled costs: roughly the cost of the equivalent native code.
JIT_COSTS: dict[CostClass, int] = {
    CostClass.CONST: 1,
    CostClass.MOVE: 1,
    CostClass.ALU: 1,
    CostClass.MUL: 3,
    CostClass.DIV: 22,
    CostClass.FPU: 3,
    CostClass.FPU_DIV: 14,
    CostClass.FPU_MATH: 40,
    CostClass.BRANCH: 1,
    CostClass.CALL: 6,
    CostClass.RET: 4,
    CostClass.MEM: 2,
    CostClass.ALLOC: 60,
    CostClass.NATIVE: 100,
    CostClass.SYNC: 10,
}


@dataclass
class CpuTimingConfig:
    """Knobs for the CPU-level noise sources.

    ``freq_scaling_enabled`` / ``turbo_enabled`` correspond to the BIOS
    settings of §4.2; ``speculation_sigma`` is the scale of the residual
    per-instruction perturbation (as a fraction of base cost) that remains
    even when everything controllable is disabled.
    """

    costs: dict[CostClass, int] = field(
        default_factory=lambda: dict(INTERPRETER_COSTS))
    freq_scaling_enabled: bool = False
    turbo_enabled: bool = False
    freq_quantum: int = 5000  # instructions between governor decisions
    freq_span: float = 0.25   # +/- range of the frequency factor
    #: Std-dev of the per-period multiplicative cost factor modelling
    #: speculative execution / prefetching variability.  The default is
    #: calibrated so a full play/replay round trip lands near the paper's
    #: residual (max IPD error ~1.85%, 97% of totals within 1%).
    speculation_sigma: float = 0.004
    speculation_period: int = 64  # instructions between perturbation draws

    def __post_init__(self) -> None:
        if self.freq_quantum <= 0 or self.speculation_period <= 0:
            raise HardwareConfigError("quantum/period must be positive")
        if self.freq_span < 0 or self.speculation_sigma < 0:
            raise HardwareConfigError("noise scales cannot be negative")


class CpuModel:
    """Charges cycles per instruction, with optional stochastic noise.

    The hot path (:meth:`instruction_cost`) is deliberately branch-light:
    noise draws happen only every ``speculation_period`` instructions and
    are amortized as an accumulated integer surcharge.
    """

    #: Ledger bucket for per-instruction execution cycles.
    LEDGER_SOURCE = Source.INSTRUCTION

    def __init__(self, config: CpuTimingConfig,
                 noise_rng: SplitMix64 | ZeroNoise) -> None:
        self.config = config
        self._rng = noise_rng
        self._costs = config.costs
        # Dense cost table indexed by CostClass value: a list index is
        # measurably cheaper than a dict lookup on the per-instruction
        # path.
        self._cost_list = [config.costs[c] for c in CostClass]
        self._freq_factor = 1.0
        self._spec_factor = 1.0
        self._combined = 1.0
        self._frac = 0.0              # fractional-cycle carry (Bresenham)
        self._instructions = 0
        # Countdown to the next noise redraw (replaces a modulo per call;
        # redraw points stay at exact multiples of speculation_period).
        self._until_redraw = config.speculation_period
        self._recompute_noise()

    def _recompute_noise(self) -> None:
        cfg = self.config
        if cfg.freq_scaling_enabled or cfg.turbo_enabled:
            span = cfg.freq_span * (1.0 if cfg.freq_scaling_enabled else 0.4)
            self._freq_factor = 1.0 + self._rng.uniform(-span, span)
        else:
            self._freq_factor = 1.0
        sigma = cfg.speculation_sigma
        if cfg.turbo_enabled:
            sigma *= 6.0  # dynamic optimizations amplify unpredictability
        if sigma > 0.0:
            self._spec_factor = max(0.8, 1.0 + self._rng.normal(0.0, sigma))
        else:
            self._spec_factor = 1.0
        self._combined = self._freq_factor * self._spec_factor

    def instruction_cost(self, cost_class: CostClass) -> int:
        """Cycle cost of one instruction of the given class, with noise.

        Sub-cycle noise is carried in a fractional accumulator so that a
        1% factor is faithfully realized over a stream of small integer
        base costs rather than being rounded away per instruction.
        """
        self._instructions += 1
        self._until_redraw -= 1
        if self._until_redraw == 0:
            self._until_redraw = self.config.speculation_period
            self._recompute_noise()
        base = self._cost_list[cost_class]
        if self._combined == 1.0 and self._frac == 0.0:
            return base
        exact = base * self._combined + self._frac
        cost = int(exact)
        self._frac = exact - cost
        return cost

    def scale_block(self, cycles: int) -> int:
        """Apply the current CPU noise to a block of cycles.

        Used for idle poll strides and abstracted compute blocks, where
        time passes in chunks rather than per-instruction; the same noise
        factors apply so those phases feel the same sources as
        interpreted code.
        """
        self._instructions += 1
        self._until_redraw -= 1
        if self._until_redraw == 0:
            self._until_redraw = self.config.speculation_period
            self._recompute_noise()
        if self._combined == 1.0:
            return cycles
        return max(1, round(cycles * self._combined))

    def base_cost(self, cost_class: CostClass) -> int:
        """Noise-free base cost (used by cost accounting and tests)."""
        return self._costs[cost_class]

    @property
    def instructions_costed(self) -> int:
        return self._instructions

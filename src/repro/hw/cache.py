"""Set-associative cache models (Section 3.6 of the paper).

The paper's argument about caches is structural: if the instruction and
memory-access streams are identical, the caches have a deterministic
replacement policy (LRU), the caches are flushed at the start, and the same
physical frames back the same virtual pages, then the cache-state evolution
— and hence its timing contribution — is reproduced exactly.

This module implements that machinery:

* :class:`Cache` — one level, configurable geometry and replacement policy
  (LRU / FIFO / RANDOM; RANDOM exists to demonstrate *why* determinism of
  the policy matters).
* :class:`CacheHierarchy` — L1 + L2 + DRAM, charging cycles per access and
  routing DRAM fills over the (contended) memory bus.
* ``pollute`` / ``randomize`` — the hooks interrupt handlers and "dirty"
  environments use to disturb cache state, i.e. the noise the mitigations
  remove.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.determinism import SplitMix64, mix64
from repro.errors import HardwareConfigError
from repro.hw.bus import MemoryBus
from repro.obs.ledger import Source


class ReplacementPolicy(enum.Enum):
    """Cache replacement policy.

    The paper requires a deterministic policy ("such as the popular LRU",
    §3.6) for time-determinism; RANDOM is provided as the counterexample.
    """

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8
    hit_cycles: int = 4
    policy: ReplacementPolicy = ReplacementPolicy.LRU
    #: Cost of writing back a dirty victim line on eviction.
    writeback_cycles: int = 60

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise HardwareConfigError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise HardwareConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines")
        if self.hit_cycles < 0:
            raise HardwareConfigError("hit latency cannot be negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)


class Cache:
    """One set-associative cache level over physical addresses."""

    #: Ledger bucket for cycles this component charges.
    LEDGER_SOURCE = Source.CACHE

    def __init__(self, config: CacheConfig,
                 rng: SplitMix64 | None = None) -> None:
        self.config = config
        self._rng = rng or SplitMix64(0)
        self._num_sets = config.num_sets
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise HardwareConfigError("line size must be a power of two")
        # Each set is an insertion-ordered dict of tags: the first key is
        # the next victim.  For LRU the order is recency (MRU last, via
        # delete+reinsert on hit); for FIFO, insertion order.  For RANDOM
        # the victim is drawn from rng.  A dict makes the LRU move O(1)
        # where a list's remove() is a scan — this is the hottest
        # structure in the simulator.
        self._sets: list[dict[int, bool]] = [{} for _ in range(self._num_sets)]
        # Dirty lines awaiting writeback, as (set index, tag) pairs.  The
        # guest's own traffic is modelled write-through (symmetric for
        # play and replay), but *polluted* lines — interrupt handlers,
        # preempting tasks, leftover pre-flush state — are dirty and cost
        # a writeback when the guest evicts them.  This is the mechanism
        # by which an un-flushed cache perturbs timing (§3.6).
        self._dirty: set[tuple[int, int]] = set()
        self._pending_writeback = 0
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, paddr: int) -> tuple[int, int]:
        line = paddr >> self._line_shift
        return line % self._num_sets, line // self._num_sets

    def access(self, paddr: int) -> bool:
        """Access the line containing ``paddr``; returns True on hit.

        The caller (the hierarchy) charges latency; this method only updates
        the replacement state.
        """
        set_idx, tag = self._locate(paddr)
        ways = self._sets[set_idx]
        if tag in ways:
            self.hits += 1
            if self.config.policy is ReplacementPolicy.LRU:
                del ways[tag]
                ways[tag] = True
            return True
        self.fill(set_idx, tag)
        return False

    def fill(self, set_idx: int, tag: int) -> None:
        """Miss bookkeeping: count it, evict a victim, insert the line.

        Split out of :meth:`access` so fused fast paths that inline the
        hit check (see ``TimedCorePlatform``) share the exact miss-side
        behaviour — including dirty-victim writeback accounting.
        """
        self.misses += 1
        ways = self._sets[set_idx]
        if len(ways) >= self.config.ways:
            if self.config.policy is ReplacementPolicy.RANDOM:
                victim_index = self._rng.randint(0, len(ways) - 1)
                victim = list(ways)[victim_index]
            else:
                victim = next(iter(ways))
            del ways[victim]
            if self._dirty:
                key = (set_idx, victim)
                if key in self._dirty:
                    self._dirty.discard(key)
                    self.writebacks += 1
                    self._pending_writeback += self.config.writeback_cycles
        ways[tag] = True

    def take_writeback_cost(self) -> int:
        """Collect (and clear) the pending dirty-eviction cost."""
        cost = self._pending_writeback
        self._pending_writeback = 0
        return cost

    def contains(self, paddr: int) -> bool:
        """Non-mutating lookup (used by tests and the warm-up check)."""
        set_idx, tag = self._locate(paddr)
        return tag in self._sets[set_idx]

    def flush(self) -> None:
        """Invalidate every line (the ``wbinvd`` of §4.2).

        ``wbinvd`` writes dirty lines back as part of the flush, so the
        dirty set is cleared too; the flush happens before the timed
        execution starts, so its own cost is outside the measurement.
        """
        for ways in self._sets:
            ways.clear()
        self._dirty.clear()
        self._pending_writeback = 0

    def pollute(self, rng: SplitMix64, lines: int) -> None:
        """Fill ``lines`` pseudo-random *dirty* lines (handler footprint).

        This is the mechanism by which IRQs displace part of the working set
        (§2.4); it is driven by a *noise* RNG so it differs between play and
        replay unless the mitigation confines IRQs to the supporting core.
        """
        for _ in range(lines):
            set_idx = rng.randint(0, self._num_sets - 1)
            tag = rng.randint(1 << 20, (1 << 21) - 1)
            ways = self._sets[set_idx]
            if tag in ways:
                continue
            if len(ways) >= self.config.ways:
                victim = next(iter(ways))
                del ways[victim]
                self._dirty.discard((set_idx, victim))
            ways[tag] = True
            self._dirty.add((set_idx, tag))

    def randomize(self, rng: SplitMix64, fill_fraction: float = 0.5) -> None:
        """Start from pseudo-random contents (an un-flushed "dirty" cache)."""
        self.flush()
        total_lines = int(self._num_sets * self.config.ways * fill_fraction)
        self.pollute(rng, total_lines)

    def state_fingerprint(self) -> int:
        """A 64-bit digest of the full cache state (determinism checks)."""
        acc = 0
        for set_idx, ways in enumerate(self._sets):
            for pos, tag in enumerate(ways):
                acc = mix64(acc ^ (set_idx * 1048573 + pos * 65537 + tag))
        return acc

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._sets)


class CacheHierarchy:
    """L1 + L2 + DRAM with per-access cycle charging.

    DRAM fills traverse the memory bus, which is where residual TC/SC
    contention noise enters (§3.3: "DMAs from devices must still traverse
    the memory bus").
    """

    #: Ledger bucket for hierarchy latencies; the bus-stall share of a
    #: DRAM fill is split out under :data:`Source.BUS` by the platform.
    LEDGER_SOURCE = Source.CACHE

    def __init__(self, l1: Cache, l2: Cache, bus: MemoryBus,
                 dram_cycles: int = 200) -> None:
        if dram_cycles < 0:
            raise HardwareConfigError("DRAM latency cannot be negative")
        self.l1 = l1
        self.l2 = l2
        self.bus = bus
        self.dram_cycles = dram_cycles
        self.dram_accesses = 0

    def access(self, paddr: int) -> int:
        """Access physical address; return the cycle cost of the access."""
        if self.l1.access(paddr):
            return self.l1.config.hit_cycles + self.l1.take_writeback_cost()
        return self._below_l1(paddr)

    def access_after_l1_miss(self, paddr: int, set_idx: int,
                             tag: int) -> int:
        """Continue an access whose L1 hit check the caller already did.

        Fused fast paths (``TimedCorePlatform``) inline the L1 hit test;
        on a miss they delegate here so the miss-side state evolution —
        L1 fill, L2 lookup, DRAM/bus charging — is shared with
        :meth:`access` and stays bit-identical.
        """
        self.l1.fill(set_idx, tag)
        return self._below_l1(paddr)

    def _below_l1(self, paddr: int) -> int:
        cost = self.l1.config.hit_cycles + self.l1.take_writeback_cost()
        if self.l2.access(paddr):
            return (cost + self.l2.config.hit_cycles
                    + self.l2.take_writeback_cost())
        self.dram_accesses += 1
        return (cost + self.l2.config.hit_cycles
                + self.l2.take_writeback_cost()
                + self.dram_cycles + self.bus.transfer_penalty())

    def flush(self) -> None:
        """Flush both levels (initialization / quiescence, §3.6)."""
        self.l1.flush()
        self.l2.flush()

    def pollute(self, rng: SplitMix64, l1_lines: int, l2_lines: int) -> None:
        """Disturb both levels with an interrupt/preemption footprint."""
        self.l1.pollute(rng, l1_lines)
        self.l2.pollute(rng, l2_lines)

    def state_fingerprint(self) -> int:
        return mix64(self.l1.state_fingerprint() ^
                     mix64(self.l2.state_fingerprint()))

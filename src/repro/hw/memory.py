"""Physical memory, frame allocation, and virtual→physical translation.

Section 3.6 of the paper: "even if the TC has the same virtual memory layout
during play and replay, the pages could still be backed by different
physical frames, which could lead to different conflicts in physically-
indexed caches.  To prevent this, Sanity deterministically chooses the
frames that will be mapped to the TC's address space."

:class:`FrameAllocator` therefore supports two modes:

* ``deterministic=True`` — frames are handed out in a fixed sequence
  (Sanity's reserved-frame kernel module, §4.2);
* ``deterministic=False`` — frames are drawn pseudo-randomly per execution,
  modelling an ordinary OS allocator; this perturbs physically-indexed
  cache behaviour between runs.
"""

from __future__ import annotations

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError

PAGE_SIZE = 4096


class FrameAllocator:
    """Hands out physical frames to back guest virtual pages."""

    def __init__(self, num_frames: int, deterministic: bool,
                 noise_rng: SplitMix64 | ZeroNoise) -> None:
        if num_frames <= 0:
            raise HardwareConfigError(f"need at least one frame: {num_frames}")
        self.num_frames = num_frames
        self.deterministic = deterministic
        self._rng = noise_rng
        self._free = list(range(num_frames))
        if not deterministic:
            # A fresh shuffle per execution models OS allocator randomness.
            if isinstance(noise_rng, SplitMix64):
                noise_rng.shuffle(self._free)

    def allocate(self) -> int:
        """Return the next physical frame number."""
        if not self._free:
            raise HardwareConfigError("out of physical frames")
        return self._free.pop(0)

    @property
    def frames_remaining(self) -> int:
        return len(self._free)


class AddressSpace:
    """Flat virtual address space with on-demand frame backing.

    The guest VM allocates virtual addresses linearly (code region, stack
    region, heap region); translation assigns a physical frame to each
    virtual page the first time it is touched.  Translation feeds the
    physically-indexed caches, so the frame choice matters for timing.
    """

    def __init__(self, allocator: FrameAllocator,
                 page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise HardwareConfigError(
                f"page size must be a positive power of two: {page_size}")
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self._allocator = allocator
        self._page_table: dict[int, int] = {}

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address to a physical address."""
        vpn = vaddr >> self._page_shift
        pfn = self._page_table.get(vpn)
        if pfn is None:
            pfn = self._allocator.allocate()
            self._page_table[vpn] = pfn
        return (pfn << self._page_shift) | (vaddr & (self.page_size - 1))

    def vpn_of(self, vaddr: int) -> int:
        """Virtual page number containing ``vaddr`` (for the TLB)."""
        return vaddr >> self._page_shift

    @property
    def mapped_pages(self) -> int:
        return len(self._page_table)

    def mapping_fingerprint(self) -> int:
        """Digest of the page table (used in determinism tests)."""
        from repro.determinism import mix64

        acc = 0
        for vpn in sorted(self._page_table):
            acc = mix64(acc ^ (vpn * 2654435761 + self._page_table[vpn]))
        return acc

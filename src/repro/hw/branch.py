"""Branch prediction (2-bit saturating counters + a direct-mapped BTB).

Branch predictor state is part of the microarchitectural state whose
evolution must be identical during play and replay; the paper's symmetric
read/write trick (§3.5) exists precisely so that play and replay take the
same branches and keep the BTB identical ("perhaps a branch taken during
play and not taken during replay, which would pollute the BTB").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError
from repro.obs.ledger import Source


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Predictor table geometry and mispredict penalty."""

    table_entries: int = 1024
    mispredict_cycles: int = 14

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or self.table_entries & (self.table_entries - 1):
            raise HardwareConfigError(
                f"table size must be a power of two: {self.table_entries}")
        if self.mispredict_cycles < 0:
            raise HardwareConfigError("mispredict penalty cannot be negative")


# 2-bit counter states.
_STRONG_NOT_TAKEN, _WEAK_NOT_TAKEN, _WEAK_TAKEN, _STRONG_TAKEN = 0, 1, 2, 3


class BranchPredictor:
    """Per-core branch predictor with deterministic state evolution."""

    #: Ledger bucket for mispredict-penalty cycles this component charges.
    LEDGER_SOURCE = Source.BRANCH

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self._mask = config.table_entries - 1
        self._counters = [_WEAK_NOT_TAKEN] * config.table_entries
        self.predictions = 0
        self.mispredictions = 0

    def record(self, pc: int, taken: bool) -> int:
        """Resolve a branch at ``pc``; return the cycle penalty (0 if hit)."""
        idx = pc & self._mask
        state = self._counters[idx]
        predicted_taken = state >= _WEAK_TAKEN
        self.predictions += 1
        # Update the saturating counter.
        if taken and state < _STRONG_TAKEN:
            self._counters[idx] = state + 1
        elif not taken and state > _STRONG_NOT_TAKEN:
            self._counters[idx] = state - 1
        if predicted_taken != taken:
            self.mispredictions += 1
            return self.config.mispredict_cycles
        return 0

    def flush(self) -> None:
        """Reset every counter (part of initialization, §3.6)."""
        for i in range(len(self._counters)):
            self._counters[i] = _WEAK_NOT_TAKEN

    @property
    def miss_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def state_fingerprint(self) -> int:
        from repro.determinism import mix64

        acc = 0
        for i, state in enumerate(self._counters):
            if state != _WEAK_NOT_TAKEN:
                acc = mix64(acc ^ (i * 1299709 + state))
        return acc

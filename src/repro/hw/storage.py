"""Storage device latency models (§3.7).

"Storage devices are more challenging because the latency between the point
where the VM issues a read request and the point where the data is
available can be difficult to reproduce.  A common way to address this is
to pad all requests to their maximal duration.  This approach is expensive
for HDDs because of their high rotational latency ... but it is more
practical for the increasingly common SSDs."

Three models:

* :class:`Hdd` — seek + rotational latency, highly variable and
  position-dependent;
* :class:`Ssd` — near-constant latency with small variance, three orders
  of magnitude faster;
* :class:`PaddedStorage` — wraps a device and pads every read to a fixed
  ceiling, which *eliminates* latency variance at the cost of throughput.
"""

from __future__ import annotations

import abc

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError
from repro.obs.ledger import Source


class StorageDevice(abc.ABC):
    """A block device whose reads cost a (possibly variable) cycle count."""

    #: Ledger bucket for device-latency cycles the timed core waits out.
    LEDGER_SOURCE = Source.STORAGE

    def __init__(self) -> None:
        self.reads = 0
        self.total_cycles = 0

    def read(self, block: int) -> int:
        """Read one block; returns the cycle cost of the operation."""
        if block < 0:
            raise ValueError(f"negative block number: {block}")
        cost = self._read_cost(block)
        self.reads += 1
        self.total_cycles += cost
        return cost

    @abc.abstractmethod
    def _read_cost(self, block: int) -> int:
        """Device-specific cost of reading ``block``."""

    @property
    @abc.abstractmethod
    def max_read_cycles(self) -> int:
        """Worst-case read cost (the padding ceiling)."""


class Ssd(StorageDevice):
    """Solid-state storage: ~25 µs reads with a small stochastic tail."""

    def __init__(self, noise_rng: SplitMix64 | ZeroNoise,
                 base_cycles: int = 85_000, jitter_cycles: int = 6_000) -> None:
        super().__init__()
        if base_cycles <= 0 or jitter_cycles < 0:
            raise HardwareConfigError("invalid SSD latency parameters")
        self._rng = noise_rng
        self.base_cycles = base_cycles
        self.jitter_cycles = jitter_cycles

    def _read_cost(self, block: int) -> int:
        jitter = 0
        if self.jitter_cycles:
            jitter = self._rng.randint(0, self.jitter_cycles)
        return self.base_cycles + jitter

    @property
    def max_read_cycles(self) -> int:
        return self.base_cycles + self.jitter_cycles


class Hdd(StorageDevice):
    """Rotating storage: seek distance + rotational position dominate.

    Seek cost is proportional to the distance from the previous block;
    rotational latency is uniform over a full revolution (7200 rpm ≈
    8.3 ms/rev ≈ 28 M cycles at 3.4 GHz — scaled down by default so that
    simulations stay fast while preserving the HDD ≫ SSD variance ratio).
    """

    def __init__(self, noise_rng: SplitMix64 | ZeroNoise,
                 seek_cycles_per_block: int = 40,
                 max_seek_cycles: int = 20_000_000,
                 rotation_cycles: int = 28_000_000) -> None:
        super().__init__()
        if seek_cycles_per_block < 0 or rotation_cycles <= 0:
            raise HardwareConfigError("invalid HDD latency parameters")
        self._rng = noise_rng
        self.seek_cycles_per_block = seek_cycles_per_block
        self.max_seek_cycles = max_seek_cycles
        self.rotation_cycles = rotation_cycles
        self._head_position = 0

    def _read_cost(self, block: int) -> int:
        seek = min(self.max_seek_cycles,
                   abs(block - self._head_position) * self.seek_cycles_per_block)
        self._head_position = block
        rotation = self._rng.randint(0, self.rotation_cycles - 1)
        return seek + rotation

    @property
    def max_read_cycles(self) -> int:
        return self.max_seek_cycles + self.rotation_cycles


class PaddedStorage(StorageDevice):
    """Pads every read of the wrapped device to a fixed ceiling.

    With padding, read latency is a constant, which removes storage I/O
    from the set of noise sources entirely (Table 1: "I/O — Pad
    variable-time operations ... Reduced"); the residual listed as
    "reduced" in the paper comes from devices that cannot be padded.
    """

    def __init__(self, device: StorageDevice,
                 pad_to_cycles: int | None = None) -> None:
        super().__init__()
        self.device = device
        self.pad_to_cycles = (pad_to_cycles if pad_to_cycles is not None
                              else device.max_read_cycles)
        if self.pad_to_cycles < device.max_read_cycles:
            raise HardwareConfigError(
                "padding ceiling below the device's worst case would "
                "re-introduce variance")

    def _read_cost(self, block: int) -> int:
        self.device.read(block)
        return self.pad_to_cycles

    @property
    def max_read_cycles(self) -> int:
        return self.pad_to_cycles

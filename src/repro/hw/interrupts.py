"""Hardware interrupt sources and their timing interference.

Interrupts are a major noise source (§2.4): "Interrupts can occur at
different points in the program; the handlers can cause delays and displace
part of the working set from the cache."

The model: each :class:`IrqSource` fires with exponential inter-arrival
times measured in timed-core cycles.  When interrupts are routed to the
timed core (an ordinary OS), each firing charges the handler cost to the
timed core's clock *and* pollutes its caches.  Sanity's mitigation (§3.3)
routes them to the supporting core instead: the TC then sees no direct
charge, only an increase of the shared-bus traffic level — reduced, not
eliminated, exactly as Table 1 records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.determinism import SplitMix64, ZeroNoise
from repro.errors import HardwareConfigError
from repro.obs.ledger import Source


@dataclass(frozen=True)
class IrqSource:
    """One interrupt source (timer tick, NIC, disk, ...).

    ``mean_interval_cycles`` is the mean inter-arrival time;
    ``handler_cycles`` the handler's direct cost on whichever core runs it;
    ``cache_lines`` the working-set footprint it displaces.
    """

    name: str
    mean_interval_cycles: float
    handler_cycles: int
    cache_lines: int = 32
    bus_traffic: float = 0.05

    def __post_init__(self) -> None:
        if self.mean_interval_cycles <= 0:
            raise HardwareConfigError(
                f"IRQ '{self.name}': mean interval must be positive")
        if self.handler_cycles < 0 or self.cache_lines < 0:
            raise HardwareConfigError(
                f"IRQ '{self.name}': costs cannot be negative")


def standard_sources() -> list[IrqSource]:
    """The interrupt mix of a commodity machine.

    Rates are per-cycle at 3.4 GHz: the timer ticks at 1 kHz, the NIC and
    disk interrupt at moderate rates, and miscellaneous housekeeping IRQs
    fire occasionally.
    """
    return [
        IrqSource("timer", mean_interval_cycles=3.4e6, handler_cycles=4000,
                  cache_lines=64, bus_traffic=0.02),
        IrqSource("nic", mean_interval_cycles=8.0e6, handler_cycles=9000,
                  cache_lines=128, bus_traffic=0.20),
        IrqSource("disk", mean_interval_cycles=2.5e7, handler_cycles=12000,
                  cache_lines=96, bus_traffic=0.25),
        IrqSource("misc", mean_interval_cycles=5.0e7, handler_cycles=20000,
                  cache_lines=160, bus_traffic=0.10),
    ]


class InterruptController:
    """Schedules IRQ firings against the virtual clock.

    The machine polls :meth:`pending_interference` periodically (every
    scheduler quantum); the controller reports the accumulated direct cost
    and cache pollution since the previous poll.
    """

    #: Ledger bucket for handler cycles charged to the timed core.
    LEDGER_SOURCE = Source.INTERRUPT

    def __init__(self, sources: list[IrqSource],
                 noise_rng: SplitMix64 | ZeroNoise,
                 routed_to_timed_core: bool) -> None:
        self.sources = sources
        self._rng = noise_rng
        self.routed_to_timed_core = routed_to_timed_core
        self._next_fire: list[float] = []
        for source in sources:
            self._next_fire.append(self._draw_interval(source))
        self.firings = 0

    def _draw_interval(self, source: IrqSource) -> float:
        interval = self._rng.exponential(source.mean_interval_cycles)
        # A ZeroNoise rng returns 0; treat that as "never fires", which is
        # the fully-quiesced configuration.
        if interval <= 0.0:
            return float("inf")
        return interval

    def pending_interference(self, now_cycles: int) -> tuple[int, int, float]:
        """IRQ interference accrued up to ``now_cycles``.

        Returns ``(direct_cycles, cache_lines, bus_traffic)`` where
        ``direct_cycles`` is charged to the timed core only when IRQs are
        routed to it; otherwise the handler runs on the supporting core and
        only ``bus_traffic`` leaks through.
        """
        direct = 0
        lines = 0
        traffic = 0.0
        for i, source in enumerate(self.sources):
            while self._next_fire[i] <= now_cycles:
                self.firings += 1
                traffic += source.bus_traffic
                if self.routed_to_timed_core:
                    direct += source.handler_cycles
                    lines += source.cache_lines
                self._next_fire[i] += self._draw_interval(source)
        return direct, lines, traffic

"""A small fully-associative TLB with LRU replacement.

The TLB is flushed together with the caches during initialization (§4.2:
"we toggle CR4.PCIDE to flush all TLB entries (including global ones)").
A miss charges a fixed page-walk cost; with identical access streams and a
deterministic replacement policy, TLB behaviour is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareConfigError
from repro.obs.ledger import Source


@dataclass(frozen=True)
class TlbConfig:
    """Geometry and miss cost of the TLB."""

    entries: int = 64
    miss_cycles: int = 30

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise HardwareConfigError("TLB needs at least one entry")
        if self.miss_cycles < 0:
            raise HardwareConfigError("TLB miss cost cannot be negative")


class Tlb:
    """Fully-associative, LRU-replaced translation lookaside buffer."""

    #: Ledger bucket for page-walk cycles this component charges.
    LEDGER_SOURCE = Source.TLB

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        # dict preserves insertion order; we re-insert on hit for LRU.
        self._entries: dict[int, bool] = {}
        self.hits = 0
        self.misses = 0

    def access(self, vpn: int) -> int:
        """Look up a virtual page number; return the cycle cost (0 on hit)."""
        if vpn in self._entries:
            self.hits += 1
            del self._entries[vpn]
            self._entries[vpn] = True
            return 0
        return self.miss(vpn)

    def miss(self, vpn: int) -> int:
        """Miss-side handling: count, evict the LRU entry, insert.

        Split out of :meth:`access` so fused fast paths that inline the
        hit check share the exact miss behaviour.
        """
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[vpn] = True
        return self.config.miss_cycles

    def flush(self) -> None:
        """Drop every entry (CR4.PCIDE toggle)."""
        self._entries.clear()

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def state_fingerprint(self) -> int:
        from repro.determinism import mix64

        acc = 0
        for pos, vpn in enumerate(self._entries):
            acc = mix64(acc ^ (pos * 40503 + vpn))
        return acc

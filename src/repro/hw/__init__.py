"""Simulated hardware substrate with an explicit virtual timing model.

This package stands in for the commodity x86 platform of the paper.  Every
source of "time noise" the paper enumerates (Table 1) is an explicit model
component here:

==================  =======================================
Component           Module
==================  =======================================
virtual cycle clock :mod:`repro.hw.clock`
CPU cost model      :mod:`repro.hw.cpu`
caches (L1/L2)      :mod:`repro.hw.cache`
TLB                 :mod:`repro.hw.tlb`
physical memory     :mod:`repro.hw.memory`
memory bus          :mod:`repro.hw.bus`
branch predictor    :mod:`repro.hw.branch`
interrupts          :mod:`repro.hw.interrupts`
storage (HDD/SSD)   :mod:`repro.hw.storage`
network interface   :mod:`repro.hw.nic`
==================  =======================================
"""

from repro.hw.branch import BranchPredictor, BranchPredictorConfig
from repro.hw.bus import BusConfig, MemoryBus
from repro.hw.cache import Cache, CacheConfig, CacheHierarchy, ReplacementPolicy
from repro.hw.clock import VirtualClock
from repro.hw.cpu import CpuModel, CpuTimingConfig, CostClass
from repro.hw.interrupts import InterruptController, IrqSource
from repro.hw.memory import AddressSpace, FrameAllocator, PAGE_SIZE
from repro.hw.nic import Nic
from repro.hw.storage import Hdd, PaddedStorage, Ssd, StorageDevice
from repro.hw.tlb import Tlb, TlbConfig

__all__ = [
    "AddressSpace",
    "BranchPredictor",
    "BranchPredictorConfig",
    "BusConfig",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CostClass",
    "CpuModel",
    "CpuTimingConfig",
    "FrameAllocator",
    "Hdd",
    "InterruptController",
    "IrqSource",
    "MemoryBus",
    "Nic",
    "PAGE_SIZE",
    "PaddedStorage",
    "ReplacementPolicy",
    "Ssd",
    "StorageDevice",
    "Tlb",
    "TlbConfig",
    "VirtualClock",
]

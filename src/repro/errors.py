"""Exception hierarchy for the TDR reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class HardwareConfigError(ReproError):
    """A hardware component was configured with invalid parameters."""


class VMError(ReproError):
    """Base class for virtual-machine execution errors."""


class VMLoadError(VMError):
    """A program could not be loaded into the VM."""


class VMRuntimeError(VMError):
    """The VM trapped during execution (host-level fault, not a guest throw)."""

    def __init__(self, message: str, pc: int | None = None,
                 function: str | None = None) -> None:
        self.pc = pc
        self.function = function
        location = ""
        if function is not None:
            location = f" in {function}"
            if pc is not None:
                location += f" at pc={pc}"
        super().__init__(message + location)


class GuestError(VMError):
    """An uncaught exception propagated out of the guest program."""

    def __init__(self, kind: str, message: str = "") -> None:
        self.kind = kind
        self.guest_message = message
        super().__init__(f"uncaught guest exception {kind}: {message}")


class AssemblerError(ReproError):
    """The assembler rejected an assembly listing."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class CompileError(ReproError):
    """The MiniJ compiler rejected a source program."""

    def __init__(self, message: str, line: int | None = None,
                 col: int | None = None) -> None:
        self.source_line = line
        self.source_col = col
        if line is not None:
            pos = f"line {line}" + (f", col {col}" if col is not None else "")
            message = f"{pos}: {message}"
        super().__init__(message)


class ReplayError(ReproError):
    """Record/replay machinery failed (log mismatch, divergence, ...)."""


class ReplayDivergenceError(ReplayError):
    """The replayed execution diverged from the recorded one."""


class LogFormatError(ReplayError):
    """An event log could not be parsed.

    ``entry_index`` and ``byte_offset`` locate the damage when it can be
    attributed to a specific entry: the index of the offending entry and
    the byte offset (into the serialized log) of its entry header.
    """

    def __init__(self, message: str, entry_index: int | None = None,
                 byte_offset: int | None = None) -> None:
        self.entry_index = entry_index
        self.byte_offset = byte_offset
        location = ""
        if entry_index is not None:
            location = f" (entry {entry_index}"
            if byte_offset is not None:
                location += f", byte offset {byte_offset}"
            location += ")"
        elif byte_offset is not None:
            location = f" (byte offset {byte_offset})"
        super().__init__(message + location)


class FaultPlanError(ReproError):
    """A fault-injection plan was configured or applied incorrectly."""


class DetectorError(ReproError):
    """A covert-channel detector was misused (e.g. not trained)."""


class ChannelError(ReproError):
    """A covert-channel encoder was configured or used incorrectly."""


class ObservabilityError(ReproError):
    """The observability layer (metrics, ledger, tracing) was misused."""


class ExecError(ReproError):
    """The guest executive was misconfigured or reached a fatal state
    (e.g. every process blocked: a mailbox deadlock)."""

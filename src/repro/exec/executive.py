"""Guest executive: deterministic multi-process scheduling + mailbox IPC.

One :class:`~repro.machine.machine.Machine` hosts several MiniJ guest
*processes*, all compiled into one :class:`~repro.vm.program.Program`
image (same code, different entry functions — the classic one-binary,
many-roles layout).  The executive drives the machine's single
:class:`~repro.vm.interpreter.Interpreter` in slices: at every context
switch it swaps the per-process context (thread set, heap arena, global
segment) in and out of the VM while the *global* instruction counter
keeps running, so §3.2's "simple global instruction counter" still
identifies any point across all processes.

Determinism
-----------

The schedule is a pure function of the execution: round-robin over READY
processes, with blocked processes woken (in pid order) exactly when
their mailbox condition holds.  It therefore needs no log entries to
*reproduce* — but each decision is still written to the event log as a
``SCHED`` entry during play and *verified* against the recomputed
decision during replay, making the schedule a tamper-evident logged
input: a doctored log or a diverging scheduler fails loudly instead of
silently shifting every downstream timing (DESIGN.md §5).

Accounting
----------

Every switch, syscall, and copied message word is charged through the
platform into the :class:`~repro.obs.ledger.CycleLedger` under the new
``sched`` / ``ipc`` sources, and the ledger's process label is driven so
that *every* cycle of the run lands in some process bucket (``(exec)``
for executive overhead) — per-process totals sum exactly to the
:class:`~repro.hw.clock.VirtualClock`.

Blocking syscalls
-----------------

``msg_send`` on a full mailbox and ``msg_recv`` on an empty one block:
the handler pushes the popped operands back, rewinds the pc onto the
``NATIVE`` instruction, and raises :class:`ExecBlocked` out of the run
loop.  When the process is next scheduled the syscall re-executes from
scratch — re-counted and re-charged identically in play and replay, so
blocking costs exactly the same both times.
"""

from __future__ import annotations

from repro.errors import ExecError
from repro.obs.ledger import Source
from repro.vm.heap import GuestThrow, Heap, HEAP_BASE
from repro.vm.interpreter import Frame, Interpreter, ThreadState
from repro.vm.isa import EXC_INDEX_OUT_OF_BOUNDS

#: Thread-id partition: process ``pid`` owns thread ids
#: ``[pid * THREADS_PER_PROCESS, (pid + 1) * THREADS_PER_PROCESS)``, which
#: keeps per-thread stack windows (STACK_BASE + tid * stride) disjoint
#: across processes and lets observers recover the pid from a thread id.
THREADS_PER_PROCESS = 16

#: Per-process heap arenas: disjoint virtual-address windows, so
#: cross-process accesses behave like distinct physical regions in the
#: cache/TLB models.  The bump allocator never reuses addresses, so the
#: stride is generous.
ARENA_STRIDE = 0x1000_0000

MAX_PROCESSES = 8

#: Ledger process label for executive overhead (switches, syscall entry).
KERNEL = "(exec)"

# Syscall cost model (cycles).  Fixed constants — a pure function of the
# syscall and its argument sizes, so replay recharges identically.
CONTEXT_SWITCH_CYCLES = 400
YIELD_CYCLES = 140
SPAWN_CYCLES = 900
SEND_BASE_CYCLES = 240
RECV_BASE_CYCLES = 240
COPY_CYCLES_PER_WORD = 6
BLOCK_CYCLES = 90
MBOX_LEN_CYCLES = 60
PROC_ID_CYCLES = 40

READY = "ready"
BLOCKED = "blocked"
EXITED = "exited"

_WORD = 8


class ExecYield(Exception):
    """Control signal: the running process yielded the CPU.

    Raised by ``sys_yield`` *after* the native completes (the pc stays
    past the ``NATIVE`` instruction), caught by the executive's run loop.
    Not part of the public API.
    """


class ExecBlocked(Exception):
    """Control signal: the running process blocked on a mailbox.

    The pc has been rewound onto the syscall's ``NATIVE`` instruction so
    the attempt re-executes when the process is rescheduled.
    """

    def __init__(self, reason: tuple[str, int]) -> None:
        self.reason = reason
        super().__init__(f"blocked on {reason[0]}(mailbox {reason[1]})")


class GuestProcess:
    """One guest process: a VM context the executive swaps in and out."""

    __slots__ = ("pid", "name", "entry", "threads", "heap", "globals",
                 "current_index", "next_thread_id", "state", "wait_reason",
                 "instructions", "slices", "yields", "sent", "received")

    def __init__(self, pid: int, name: str, entry: str) -> None:
        self.pid = pid
        self.name = name
        self.entry = entry
        self.threads: list[ThreadState] = []
        self.heap: Heap | None = None
        self.globals: list = []
        self.current_index = 0
        self.next_thread_id = pid * THREADS_PER_PROCESS
        self.state = READY
        self.wait_reason: tuple[str, int] | None = None
        self.instructions = 0
        self.slices = 0
        self.yields = 0
        self.sent = 0
        self.received = 0


class Executive:
    """Drives one machine's interpreter as a multi-process executive."""

    def __init__(self, machine, num_mailboxes: int = 4,
                 mailbox_capacity: int = 8,
                 quantum: int | None = None) -> None:
        if num_mailboxes < 1 or mailbox_capacity < 1:
            raise ExecError("need at least one mailbox with capacity >= 1")
        self.machine = machine
        self.platform = machine.platform
        self.num_mailboxes = num_mailboxes
        self.capacity = mailbox_capacity
        #: Mailboxes hold host-side *value copies* (lists of ints): no
        #: heap handles cross process boundaries, so arenas stay disjoint
        #: and GC roots never span processes.
        self.mailboxes: list[list[list[int]]] = \
            [[] for _ in range(num_mailboxes)]
        self.quantum = quantum if quantum is not None \
            else machine.config.thread_quantum
        if self.quantum < 1:
            raise ExecError(f"quantum must be positive, got {self.quantum}")
        self.processes: list[GuestProcess] = []
        self.vm: Interpreter | None = None
        self.current: GuestProcess | None = None
        self._last = -1
        self.switches = 0
        self.messages = 0

    # -- run loop -----------------------------------------------------------

    def run(self, program, processes: list[tuple[str, str]],
            max_instructions: int = 200_000_000):
        """Run ``processes`` (name, entry-function pairs) of ``program``.

        The first process must use the program's entry function (it
        adopts the freshly built VM's initial thread/heap/globals).
        Returns the machine's :class:`ExecutionResult`; per-process
        attribution rides in ``result.process_ledger``.
        """
        machine = self.machine
        if machine._ran:
            raise ExecError("a Machine is single-shot; build a new one "
                            "per executive run")
        if machine.workload is not None:
            raise ExecError("executive runs drive all processes "
                            "internally; workloads are not supported")
        machine._ran = True
        if not processes:
            raise ExecError("an executive run needs at least one process")
        if len(processes) > MAX_PROCESSES:
            raise ExecError(f"at most {MAX_PROCESSES} processes "
                            f"(got {len(processes)})")
        if processes[0][1] != program.entry:
            raise ExecError(
                f"process 0 must run the program entry "
                f"'{program.entry}', got '{processes[0][1]}'")
        names = [name for name, _ in processes]
        if len(set(names)) != len(names):
            raise ExecError(f"process names must be unique: {names}")

        platform = self.platform
        platform.executive = self
        vm = Interpreter(program, platform, machine.vm_config())
        machine.attach_observers(vm)
        self.vm = vm
        ledger = machine.ledger
        if ledger is not None:
            # Label from cycle 0: every charge of the run lands in some
            # process bucket, so per-process sums close exactly.
            ledger.process = KERNEL

        # Process 0 adopts the fresh VM's context verbatim: its entry
        # thread already has id 0 (= pid 0's partition base) and the
        # default heap already sits at pid 0's arena base.
        proc0 = GuestProcess(0, names[0], processes[0][1])
        proc0.threads = vm.threads
        proc0.heap = vm.heap
        proc0.globals = vm.globals
        proc0.current_index = vm._current_index
        proc0.next_thread_id = vm._next_thread_id
        self.processes.append(proc0)
        for name, entry in processes[1:]:
            self._create_process(name, program.function(entry))

        tracer = machine.obs.tracer if machine.obs is not None else None
        if tracer is not None:
            tracer.bind(machine.clock.now_ns,
                        track=f"{machine.mode}:{machine.config.name}")
            tracer.begin("exec.run", mode=machine.mode,
                         config=machine.config.name,
                         processes=len(processes))

        while True:
            remaining = max_instructions - vm.instruction_count
            if remaining <= 0:
                break
            pid = self._schedule()
            if pid is None:
                blocked = [p.name for p in self.processes
                           if p.state == BLOCKED]
                if blocked:
                    raise ExecError(
                        "mailbox deadlock: every live guest process is "
                        f"blocked ({', '.join(blocked)})")
                break  # every process exited
            proc = self.processes[pid]
            # Boundary: the previous slice's batched charges land under
            # the previous process's label, then the switch itself is
            # executive overhead.
            platform.flush_charges()
            if ledger is not None:
                ledger.process = KERNEL
            machine.session.observe_sched(vm.instruction_count, pid)
            platform.charge_cycles(CONTEXT_SWITCH_CYCLES, Source.SCHED)
            platform.flush_charges()
            self.switches += 1
            self._swap_in(proc)
            if ledger is not None:
                ledger.process = proc.name
            before = vm.instruction_count
            try:
                vm.run(self.quantum if self.quantum < remaining
                       else remaining)
            except ExecYield:
                proc.yields += 1
            except ExecBlocked as blocked_sig:
                proc.state = BLOCKED
                proc.wait_reason = blocked_sig.reason
            proc.instructions += vm.instruction_count - before
            proc.slices += 1
            self._swap_out(proc)
            self._last = pid
            if vm.halted:
                # ``exit()`` terminates the *calling process* on an
                # executive machine; the other processes keep running.
                vm.halted = False
                proc.state = EXITED
            elif proc.state == READY \
                    and not any(t.alive for t in proc.threads):
                proc.state = EXITED

        # Final slice's residue lands under the last process, then the
        # wrap-up (result assembly flushes are no-ops) is unlabeled-free.
        platform.flush_charges()
        if ledger is not None:
            ledger.process = None
        if tracer is not None:
            tracer.end("exec.run", total_cycles=machine.clock.cycles,
                       switches=self.switches, messages=self.messages)
        result = machine.make_result(vm)
        stats = result.stats
        stats["exec_processes"] = len(self.processes)
        stats["exec_switches"] = self.switches
        stats["exec_messages"] = self.messages
        stats["exec_exited"] = sum(1 for p in self.processes
                                   if p.state == EXITED)
        if result.profile is not None:
            _tag_profile_pids(result.profile)
        return result

    # -- scheduling ---------------------------------------------------------

    def _schedule(self) -> int | None:
        """The deterministic schedule decision: wake, then round-robin.

        Pure function of the execution state — this exact computation
        runs in both play and replay; ``observe_sched`` records/verifies
        its outcome.
        """
        procs = self.processes
        for proc in procs:
            if proc.state == BLOCKED and self._wakeable(proc):
                # A woken process may find the condition gone by the
                # time it runs (another waiter consumed the message);
                # it then simply re-blocks.  Deterministic either way.
                proc.state = READY
                proc.wait_reason = None
        count = len(procs)
        for offset in range(count):
            pid = (self._last + 1 + offset) % count
            if procs[pid].state == READY:
                return pid
        return None

    def _wakeable(self, proc: GuestProcess) -> bool:
        kind, mbox = proc.wait_reason
        queue = self.mailboxes[mbox]
        if kind == "recv":
            return len(queue) > 0
        return len(queue) < self.capacity

    def _create_process(self, name: str, function) -> GuestProcess:
        pid = len(self.processes)
        if pid >= MAX_PROCESSES:
            raise ExecError(f"at most {MAX_PROCESSES} processes")
        if function.num_params != 0:
            raise ExecError(f"process entry '{function.name}' must take "
                            "no parameters")
        vm = self.vm
        proc = GuestProcess(pid, name, function.name)
        proc.heap = Heap(vm.config.heap, base=HEAP_BASE + pid * ARENA_STRIDE)
        proc.globals = [0] * vm.program.num_globals
        thread = ThreadState(pid * THREADS_PER_PROCESS)
        thread.frames.append(Frame(function, thread.frame_base(0)))
        proc.threads = [thread]
        proc.next_thread_id = pid * THREADS_PER_PROCESS + 1
        self.processes.append(proc)
        return proc

    def _swap_in(self, proc: GuestProcess) -> None:
        vm = self.vm
        vm.threads = proc.threads
        vm.heap = proc.heap
        vm.globals = proc.globals
        vm._current_index = proc.current_index
        vm._next_thread_id = proc.next_thread_id
        self.current = proc

    def _swap_out(self, proc: GuestProcess) -> None:
        vm = self.vm
        proc.current_index = vm._current_index
        proc.next_thread_id = vm._next_thread_id
        if proc.next_thread_id > (proc.pid + 1) * THREADS_PER_PROCESS:
            raise ExecError(
                f"process '{proc.name}' exceeded its thread partition "
                f"({THREADS_PER_PROCESS} threads)")
        self.current = None

    # -- syscalls (dispatched from the platform's exec natives) -------------

    def _queue(self, mbox: int) -> list:
        if not 0 <= mbox < self.num_mailboxes:
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        return self.mailboxes[mbox]

    def _block(self, vm: Interpreter, args: list,
               reason: tuple[str, int]) -> None:
        """Undo the syscall attempt and suspend the calling process.

        ``pop_args`` took the operands off the stack and the interpreter
        already advanced the pc past the ``NATIVE`` instruction; restore
        both so the retry re-executes the syscall from scratch, then
        charge the failed attempt (same cost every attempt, both modes).
        """
        frame = vm.current_thread.frames[-1]
        frame.stack.extend(args)
        frame.pc -= 1
        self.platform.charge_cycles(BLOCK_CYCLES, Source.SCHED)
        raise ExecBlocked(reason)

    def sys_yield(self, vm: Interpreter) -> None:
        self.platform.charge_cycles(YIELD_CYCLES, Source.SCHED)
        raise ExecYield()

    def sys_send(self, vm: Interpreter, mbox: int, buf_handle: int,
                 length: int) -> None:
        queue = self._queue(mbox)
        obj = self.platform._guest_array(vm, buf_handle)
        if length < 0 or length > len(obj.data):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        if len(queue) >= self.capacity:
            self._block(vm, [mbox, buf_handle, length], ("send", mbox))
        data = obj.data
        base = obj.vaddr + 16
        message = [0] * length
        for i in range(length):
            message[i] = int(data[i])
            self.platform.mem_access(base + i * _WORD)
        self.platform.charge_cycles(
            SEND_BASE_CYCLES + COPY_CYCLES_PER_WORD * length, Source.IPC)
        queue.append(message)
        self.messages += 1
        self.current.sent += 1

    def sys_recv(self, vm: Interpreter, mbox: int, buf_handle: int) -> int:
        queue = self._queue(mbox)
        obj = self.platform._guest_array(vm, buf_handle)
        if not queue:
            self._block(vm, [mbox, buf_handle], ("recv", mbox))
        message = queue.pop(0)
        count = min(len(message), len(obj.data))
        data = obj.data
        base = obj.vaddr + 16
        for i in range(count):
            data[i] = message[i]
            self.platform.mem_access(base + i * _WORD)
        self.platform.charge_cycles(
            RECV_BASE_CYCLES + COPY_CYCLES_PER_WORD * count, Source.IPC)
        self.current.received += 1
        return count

    def sys_spawn(self, vm: Interpreter, func_idx: int) -> int:
        functions = vm.program.functions
        if not 0 <= func_idx < len(functions):
            raise GuestThrow(EXC_INDEX_OUT_OF_BOUNDS)
        function = functions[func_idx]
        # Creation only reads program metadata and appends to the process
        # table — the caller's context stays installed in the VM.
        proc = self._create_process(
            f"{function.name}.{len(self.processes)}", function)
        self.platform.charge_cycles(SPAWN_CYCLES, Source.SCHED)
        return proc.pid

    def sys_mbox_len(self, vm: Interpreter, mbox: int) -> int:
        queue = self._queue(mbox)
        self.platform.charge_cycles(MBOX_LEN_CYCLES, Source.IPC)
        return len(queue)

    def sys_proc_id(self, vm: Interpreter) -> int:
        self.platform.charge_cycles(PROC_ID_CYCLES, Source.SCHED)
        return self.current.pid


def _tag_profile_pids(profile: dict) -> None:
    """Annotate an exported profile's stacks with owning process ids.

    On an executive machine a thread id encodes its process (partition
    of :data:`THREADS_PER_PROCESS`); the runtime frame (thread -1) stays
    untagged.
    """
    for entry in profile.get("stacks", []):
        thread = entry.get("thread", -1)
        if thread >= 0:
            entry["pid"] = thread // THREADS_PER_PROCESS

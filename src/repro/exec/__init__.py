"""Guest executive: deterministic multi-process runs on one machine.

See :mod:`repro.exec.executive` for the scheduler/IPC core and
:mod:`repro.exec.scenarios` for the canned multi-process programs (clean
pipeline, scheduler-yield covert channel, mailbox-occupancy covert
channel) plus the play/replay/audit drivers.
"""

from repro.exec.executive import (ARENA_STRIDE, BLOCKED, EXITED, ExecBlocked,
                                  Executive, ExecYield, GuestProcess, KERNEL,
                                  MAX_PROCESSES, READY, THREADS_PER_PROCESS)
from repro.exec.scenarios import (EXEC_SCENARIOS, ExecScenario,
                                  exec_fleet_task, exec_play, exec_replay,
                                  exec_round_trip, exec_scenario)

__all__ = [
    "ARENA_STRIDE", "BLOCKED", "EXITED", "EXEC_SCENARIOS", "ExecBlocked",
    "ExecScenario", "Executive", "ExecYield", "GuestProcess", "KERNEL",
    "MAX_PROCESSES", "READY", "THREADS_PER_PROCESS",
    "exec_fleet_task", "exec_play", "exec_replay", "exec_round_trip",
    "exec_scenario",
]

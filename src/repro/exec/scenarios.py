"""Canned multi-process guest scenarios and their TDR drivers.

Three scenarios exercise the executive end to end:

* ``pipeline`` — a clean producer → filter pipeline over a bounded
  mailbox (the filter is spawned *from guest code* via ``proc_spawn``),
  plus a ticker process that adds scheduling interleavings.  Its audit
  replay is consistent: multi-process scheduling and IPC alone add no
  timing deviation.

* ``sched`` — the scheduler-yield covert channel: the sender process
  modulates how long it holds the CPU before ``exec_yield`` (via the
  ``covert_delay`` primitive), the receiver process decodes bits from
  the scheduling gaps it observes across its own yields and relays them
  as packets.  The audit replay runs clean, the gaps collapse, and the
  timing deviation flags the channel.

* ``mbox`` — the mailbox covert channel: the sender delays ``msg_send``
  by the bit-dependent hold; the receiver blocks in ``msg_recv`` and
  decodes from its wake-up gaps (it also samples ``mbox_len``, the
  occupancy side of the channel family).

In every sender the covert value feeds *only* ``covert_delay`` — never
control flow — so a clean replay (where ``covert_next_delay`` returns 0)
executes the identical instruction stream and the schedule verification
of :meth:`~repro.core.session.Session.observe_sched` passes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import compare_traces
from repro.core.tdr import TdrResult
from repro.determinism import SplitMix64
from repro.errors import ExecError, ReplayError
from repro.exec.executive import Executive
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult, Machine

#: Covert rounds per scenario run (= relayed packets).
ROUNDS = 48
#: Baseline work the sender does every round, cycles (~59 µs @ 3.4 GHz).
BASE_WORK_CYCLES = 200_000
#: Extra hold for a 1-bit, cycles (~176 µs @ 3.4 GHz) — far above the
#: natural slice-to-slice variation, far below anything a quantum bound
#: would clip.
HOLD_CYCLES = 600_000
#: Receiver decode threshold, ns: between the 0-gap (~60-70 µs) and the
#: 1-gap (~240 µs).
THRESH_NS = 130_000

_PIPELINE_ITEMS = 24
_PIPELINE_TICKS = 12


def pipeline_source() -> str:
    """Clean two-stage pipeline + ticker (no covert behaviour).

    ``filter_main`` is declared first on purpose: function indices are
    assigned in declaration order, so guest code can ``proc_spawn(0)``.
    """
    return f"""
    // Stage 2: consume items from mailbox 0, checksum, emit packets.
    global int items_done;

    void filter_main() {{
        int[] item = new int[8];
        int[] out = new int[4];
        while (true) {{
            int n = msg_recv(0, item);
            if (item[0] < 0) {{ break; }}
            int checksum = 0;
            for (int p = 0; p < 4; p = p + 1) {{
                for (int i = 0; i < n; i = i + 1) {{
                    checksum = (checksum + item[i] * (p + 1)) % 8191;
                }}
            }}
            busy_cycles(40000);
            out[0] = item[0];
            out[1] = checksum % 256;
            out[2] = checksum / 256;
            items_done = items_done + 1;
            send_packet(out, 3);
        }}
        print_int(items_done);
    }}

    void ticker_main() {{
        for (int t = 0; t < {_PIPELINE_TICKS}; t = t + 1) {{
            busy_cycles(12000);
            exec_yield();
        }}
    }}

    void main() {{
        // Spawn the filter from guest code (function index 0).
        int child = proc_spawn(0);
        int[] item = new int[8];
        for (int k = 0; k < {_PIPELINE_ITEMS}; k = k + 1) {{
            item[0] = k;
            for (int i = 1; i < 8; i = i + 1) {{
                item[i] = (k * 37 + i * 11) % 1000;
            }}
            busy_cycles(25000);
            msg_send(0, item, 8);
        }}
        item[0] = 0 - 1;
        msg_send(0, item, 8);
        print_int(child);
        exit();
    }}
    """


def sched_source() -> str:
    """Scheduler-yield covert channel: sender holds the CPU per bit."""
    return f"""
    global int decoded_count;

    void worker_main() {{
        for (int round = 0; round < {ROUNDS}; round = round + 1) {{
            busy_cycles({BASE_WORK_CYCLES});
            // The covert value feeds only the delay primitive; control
            // flow is identical with or without the channel.
            covert_delay(covert_next_delay());
            exec_yield();
        }}
    }}

    void main() {{
        int[] packet = new int[4];
        int last = nano_time();
        exec_yield();
        for (int round = 0; round < {ROUNDS}; round = round + 1) {{
            int now = nano_time();
            int gap = now - last;
            last = now;
            int bit = 0;
            if (gap > {THRESH_NS}) {{ bit = 1; }}
            decoded_count = decoded_count + bit;
            packet[0] = round;
            packet[1] = bit;
            packet[2] = gap % 251;
            send_packet(packet, 3);
            exec_yield();
        }}
        print_int(decoded_count);
        exit();
    }}
    """


def mbox_source() -> str:
    """Mailbox covert channel: bit-dependent delay before ``msg_send``."""
    return f"""
    global int decoded_count;

    void source_main() {{
        int[] msg = new int[8];
        for (int round = 0; round < {ROUNDS}; round = round + 1) {{
            covert_delay(covert_next_delay());
            busy_cycles({BASE_WORK_CYCLES});
            for (int i = 0; i < 8; i = i + 1) {{
                msg[i] = round * 8 + i;
            }}
            msg_send(0, msg, 8);
            exec_yield();
        }}
    }}

    void main() {{
        int[] inbox = new int[8];
        int[] packet = new int[4];
        int last = nano_time();
        for (int round = 0; round < {ROUNDS}; round = round + 1) {{
            int pending = mbox_len(0);
            int n = msg_recv(0, inbox);
            int now = nano_time();
            int gap = now - last;
            last = now;
            int bit = 0;
            if (gap > {THRESH_NS}) {{ bit = 1; }}
            decoded_count = decoded_count + bit;
            packet[0] = round;
            packet[1] = bit;
            packet[2] = pending;
            packet[3] = inbox[n - 1] % 256;
            send_packet(packet, 4);
        }}
        print_int(decoded_count);
        exit();
    }}
    """


@dataclass(frozen=True)
class ExecScenario:
    """One canned multi-process program and how to run it."""

    name: str
    title: str
    source_fn: object                       # () -> MiniJ source
    processes: tuple[tuple[str, str], ...]  # (name, entry function)
    num_mailboxes: int = 2
    mailbox_capacity: int = 8
    #: Covert rounds; 0 marks a clean scenario with no delay schedule.
    rounds: int = 0
    hold_cycles: int = 0

    def program(self):
        """The compiled program image (cached per scenario)."""
        cached = _PROGRAMS.get(self.name)
        if cached is None:
            from repro.apps import compile_app

            cached = _PROGRAMS[self.name] = compile_app(self.source_fn())
        return cached

    def payload_bits(self, seed: int = 7) -> list[int]:
        """A deterministic covert payload (one bit per round)."""
        rng = SplitMix64(seed).fork(f"exec-{self.name}")
        return [rng.randint(0, 1) for _ in range(self.rounds)]

    def covert_schedule(self, bits: list[int]) -> list[int]:
        """Delay schedule the sender's ``covert_next_delay`` consumes."""
        if self.rounds == 0:
            raise ExecError(
                f"scenario '{self.name}' has no covert sender")
        sized = (list(bits) + [0] * self.rounds)[:self.rounds]
        return [self.hold_cycles if bit else 0 for bit in sized]


_PROGRAMS: dict = {}

EXEC_SCENARIOS: dict[str, ExecScenario] = {
    scenario.name: scenario for scenario in (
        ExecScenario(
            name="pipeline",
            title="clean producer/filter pipeline + ticker",
            source_fn=pipeline_source,
            processes=(("producer", "main"), ("ticker", "ticker_main"))),
        ExecScenario(
            name="sched",
            title="scheduler-yield covert channel",
            source_fn=sched_source,
            processes=(("relay", "main"), ("worker", "worker_main")),
            rounds=ROUNDS, hold_cycles=HOLD_CYCLES),
        ExecScenario(
            name="mbox",
            title="mailbox covert channel",
            source_fn=mbox_source,
            processes=(("sink", "main"), ("source", "source_main")),
            rounds=ROUNDS, hold_cycles=HOLD_CYCLES),
    )
}


def exec_scenario(name: str) -> ExecScenario:
    try:
        return EXEC_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(EXEC_SCENARIOS))
        raise ExecError(
            f"unknown exec scenario '{name}' (known: {known})") from None


def _run(scenario: ExecScenario, machine: Machine,
         max_instructions: int, quantum: int | None) -> ExecutionResult:
    executive = Executive(machine,
                          num_mailboxes=scenario.num_mailboxes,
                          mailbox_capacity=scenario.mailbox_capacity,
                          quantum=quantum)
    return executive.run(scenario.program(), list(scenario.processes),
                         max_instructions=max_instructions)


def exec_play(scenario: ExecScenario, config: MachineConfig | None = None,
              seed: int = 0, covert_schedule: list[int] | None = None,
              max_instructions: int = 50_000_000, obs=None,
              quantum: int | None = None) -> ExecutionResult:
    """Record an executive run (schedule decisions land in the log)."""
    machine = Machine(config or MachineConfig(), seed=seed, mode="play",
                      covert_schedule=covert_schedule, obs=obs)
    return _run(scenario, machine, max_instructions, quantum)


def exec_replay(scenario: ExecScenario, log,
                config: MachineConfig | None = None, seed: int = 1,
                max_instructions: int = 50_000_000, obs=None,
                quantum: int | None = None) -> ExecutionResult:
    """Time-deterministically replay a recorded executive run.

    The scheduler recomputes every decision; the logged ``SCHED``
    entries are verified against it, so a divergent or tampered
    schedule raises instead of silently shifting all later timing.
    """
    machine = Machine(config or MachineConfig(), seed=seed, mode="replay",
                      log=log, obs=obs)
    return _run(scenario, machine, max_instructions, quantum)


def exec_fleet_task(task: tuple) -> dict:
    """Fleet worker: one executive round trip from a picklable task.

    ``task`` is ``(scenario_name, covert, play_seed, replay_seed,
    quantum)``; the returned summary is a plain dict so it crosses a
    process pool, and it carries every observable the determinism checks
    compare — a fleet run at any ``--jobs`` must reproduce the serial
    summaries bit for bit.
    """
    import hashlib

    name, covert, play_seed, replay_seed, quantum = task
    scenario = exec_scenario(name)
    tdr = exec_round_trip(scenario, play_seed=play_seed,
                          replay_seed=replay_seed, covert=covert,
                          quantum=quantum)
    return {
        "scenario": name,
        "covert": covert,
        "play_cycles": tdr.play.total_cycles,
        "replay_cycles": tdr.replay.total_cycles,
        "instructions": tdr.play.instructions,
        "tx": list(tdr.play.tx),
        "console": list(tdr.play.console),
        "switches": tdr.play.stats["exec_switches"],
        "messages": tdr.play.stats["exec_messages"],
        "deviation_ms": tdr.audit.deviation_score(),
        "consistent": tdr.audit.is_consistent(),
        "payloads_match": tdr.audit.payloads_match,
        "log_sha256": hashlib.sha256(
            tdr.play.log.to_bytes()).hexdigest(),
    }


def exec_round_trip(scenario: ExecScenario,
                    config: MachineConfig | None = None,
                    play_seed: int = 0, replay_seed: int = 1,
                    covert: bool = False, bits: list[int] | None = None,
                    max_instructions: int = 50_000_000,
                    obs=None, quantum: int | None = None) -> TdrResult:
    """Play, replay, and audit one executive scenario.

    With ``covert=True`` the sender's delay schedule is installed on the
    play machine only — the audit replay runs clean (§5.3), which is
    what exposes the scheduler/mailbox channels as timing deviations.
    """
    schedule = None
    if covert:
        schedule = scenario.covert_schedule(
            bits if bits is not None else scenario.payload_bits())
    play_result = exec_play(scenario, config, seed=play_seed,
                            covert_schedule=schedule,
                            max_instructions=max_instructions, obs=obs,
                            quantum=quantum)
    if play_result.log is None:
        raise ReplayError(
            f"executive play produced no log (scenario={scenario.name})")
    replay_result = exec_replay(scenario, play_result.log, config,
                                seed=replay_seed,
                                max_instructions=max_instructions, obs=obs,
                                quantum=quantum)
    report = compare_traces(play_result, replay_result)
    return TdrResult(play_result, replay_result, report)

"""Network substrate: packets, traces, jitter models, WAN links.

The paper's covert-channel experiments place the NFS client and server at
two different U.S. East-coast universities (§6.6): RTT ≈ 10 ms, measured
jitter percentiles p50 = 0.18 ms, p90 = 0.80 ms, p99 = 3.91 ms.  Those
numbers calibrate :data:`~repro.net.jitter.EAST_COAST_JITTER`; the §6.9
argument (replay noise ≪ network jitter) is quantitative over them.
"""

from repro.net.jitter import (BROADBAND_JITTER, EAST_COAST_JITTER,
                              JitterModel, QuantileJitter)
from repro.net.link import LossyWanLink, WanLink
from repro.net.trace import PacketRecord, PacketTrace

__all__ = [
    "BROADBAND_JITTER",
    "EAST_COAST_JITTER",
    "JitterModel",
    "LossyWanLink",
    "PacketRecord",
    "PacketTrace",
    "QuantileJitter",
    "WanLink",
]

"""Packet traces: the detector-facing view of an execution.

A :class:`PacketTrace` is what a passive observer (the paper's
server-side tap, §6.6) records: timestamps and payloads of transmitted
packets.  Detectors consume the inter-packet delays
(:meth:`PacketTrace.ipds_ms`); the TDR detector additionally compares
against a replayed trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class PacketRecord:
    """One observed packet."""

    time_ms: float
    payload: bytes

    def to_json_obj(self) -> dict:
        return {"t": self.time_ms, "data": self.payload.hex()}

    @classmethod
    def from_json_obj(cls, obj: dict) -> "PacketRecord":
        return cls(time_ms=float(obj["t"]),
                   payload=bytes.fromhex(obj["data"]))


class PacketTrace:
    """An ordered sequence of observed packets."""

    def __init__(self, records: list[PacketRecord] | None = None) -> None:
        self.records = list(records or [])
        for earlier, later in zip(self.records, self.records[1:]):
            if later.time_ms < earlier.time_ms:
                raise ReproError("packet trace timestamps must be "
                                 "non-decreasing")

    @classmethod
    def from_result(cls, result) -> "PacketTrace":
        """Build a trace from an :class:`ExecutionResult`."""
        times = result.tx_times_ms()
        return cls([PacketRecord(t, payload)
                    for t, (_, payload) in zip(times, result.tx)])

    @classmethod
    def from_times_ms(cls, times_ms: list[float],
                      payload: bytes = b"") -> "PacketTrace":
        """Build a payload-less trace from timestamps (synthetic data)."""
        return cls([PacketRecord(t, payload) for t in sorted(times_ms)])

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def times_ms(self) -> list[float]:
        return [record.time_ms for record in self.records]

    def ipds_ms(self) -> list[float]:
        """Inter-packet delays — the covert channel's carrier signal."""
        times = self.times_ms()
        return [b - a for a, b in zip(times, times[1:])]

    def duration_ms(self) -> float:
        if len(self.records) < 2:
            return 0.0
        return self.records[-1].time_ms - self.records[0].time_ms

    def slice_packets(self, start: int, stop: int) -> "PacketTrace":
        """A sub-trace by packet index."""
        return PacketTrace(self.records[start:stop])

    def shifted(self, delays_ms: list[float]) -> "PacketTrace":
        """A copy with per-packet extra delays applied cumulatively.

        Delaying packet k by d also delays every later packet by d (the
        server's send loop is sequential), which is exactly how the
        ``covert_delay`` primitive perturbs a real execution.
        """
        if len(delays_ms) != len(self.records):
            raise ReproError(
                f"need one delay per packet: {len(delays_ms)} != "
                f"{len(self.records)}")
        accumulated = 0.0
        out: list[PacketRecord] = []
        for record, delay in zip(self.records, delays_ms):
            if delay < 0:
                raise ReproError("covert delays cannot be negative")
            accumulated += delay
            out.append(PacketRecord(record.time_ms + accumulated,
                                    record.payload))
        return PacketTrace(out)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps([r.to_json_obj() for r in self.records])

    @classmethod
    def from_json(cls, text: str) -> "PacketTrace":
        try:
            items = json.loads(text)
            return cls([PacketRecord.from_json_obj(obj) for obj in items])
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(f"malformed trace JSON: {exc}") from exc

"""A WAN link: propagation delay plus stochastic jitter.

Used in two places:

* the :class:`~repro.machine.workload.InteractiveClient` sits behind one,
  so request arrivals at the server carry realistic wide-area variation;
* receiver-side covert-channel decoding (§6.9): the *receiver* of a covert
  channel observes sender IPDs after they traverse the link, so channel
  capacity is bounded by the jitter this model adds.
"""

from __future__ import annotations

from repro.determinism import SplitMix64
from repro.net.jitter import EAST_COAST_JITTER, JitterModel


class WanLink:
    """One direction of a wide-area path."""

    def __init__(self, rtt_ms: float = 10.0,
                 jitter: JitterModel | None = None,
                 frequency_hz: float = 3.4e9) -> None:
        if rtt_ms < 0:
            raise ValueError(f"negative RTT: {rtt_ms}")
        self.rtt_ms = rtt_ms
        self.jitter = jitter if jitter is not None else EAST_COAST_JITTER
        self.frequency_hz = frequency_hz

    @property
    def one_way_ms(self) -> float:
        return self.rtt_ms / 2.0

    @property
    def one_way_cycles(self) -> int:
        return round(self.one_way_ms * 1e-3 * self.frequency_hz)

    def deliver_ms(self, send_time_ms: float, rng: SplitMix64) -> float:
        """Arrival time of a packet sent at ``send_time_ms``."""
        return send_time_ms + self.one_way_ms + self.jitter.sample_ms(rng)

    def deliver_cycles(self, send_cycle: int, rng: SplitMix64) -> int:
        """Arrival cycle of a packet sent at ``send_cycle``."""
        return (send_cycle + self.one_way_cycles
                + self.jitter.sample_cycles(rng, self.frequency_hz))

    def delivers(self, rng: SplitMix64) -> bool:
        """Does one transmission attempt survive the path?

        The base link never drops; :class:`LossyWanLink` overrides this.
        """
        return True

    def transit_times_ms(self, send_times_ms: list[float],
                         rng: SplitMix64) -> list[float]:
        """Arrival times for a whole transmission schedule.

        Arrival order is preserved (packets on one TCP-like flow do not
        reorder): each arrival is clamped to be no earlier than the
        previous one.
        """
        arrivals: list[float] = []
        last = float("-inf")
        for send in send_times_ms:
            arrival = self.deliver_ms(send, rng)
            last = max(last, arrival)
            arrivals.append(last)
        return arrivals


class LossyWanLink(WanLink):
    """A WAN link that drops a fraction of transmission attempts.

    Models the log-transfer path from the audited machine to the auditor
    (§5.3): the log travels over a real network, so the resilient audit
    pipeline must survive loss, not just jitter.  Drops are drawn from
    the caller's :class:`~repro.determinism.SplitMix64` stream, so every
    lossy transfer is exactly reproducible.
    """

    def __init__(self, rtt_ms: float = 10.0,
                 jitter: JitterModel | None = None,
                 frequency_hz: float = 3.4e9,
                 drop_rate: float = 0.0) -> None:
        super().__init__(rtt_ms=rtt_ms, jitter=jitter,
                         frequency_hz=frequency_hz)
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop rate must be in [0, 1): {drop_rate}")
        self.drop_rate = drop_rate

    def delivers(self, rng: SplitMix64) -> bool:
        return rng.random() >= self.drop_rate

"""Network jitter models calibrated to measured percentiles.

:class:`QuantileJitter` samples by piecewise-linear inversion of a CDF
given as (quantile, value) anchor points, so the model reproduces the
paper's measured percentiles *exactly* at the anchors:

* :data:`EAST_COAST_JITTER` — the inter-university path of §6.6
  (p50 = 0.18 ms, p90 = 0.80 ms, p99 = 3.91 ms, from 1000 ICMP pings);
* :data:`BROADBAND_JITTER` — residential broadband with median ≈ 2.5 ms
  (§6.9, citing Dischinger et al. [18]).
"""

from __future__ import annotations

import abc

from repro.determinism import SplitMix64


class JitterModel(abc.ABC):
    """One-way network delay variation, sampled in milliseconds."""

    @abc.abstractmethod
    def sample_ms(self, rng: SplitMix64) -> float:
        """Draw one jitter value in milliseconds."""

    def sample_cycles(self, rng: SplitMix64,
                      frequency_hz: float = 3.4e9) -> int:
        """Draw one jitter value in timed-core cycles."""
        return max(0, round(self.sample_ms(rng) * 1e-3 * frequency_hz))

    @abc.abstractmethod
    def median_ms(self) -> float:
        """The model's median jitter."""


class QuantileJitter(JitterModel):
    """Piecewise-linear inverse-CDF sampler over quantile anchors."""

    def __init__(self, anchors: list[tuple[float, float]]) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two quantile anchors")
        anchors = sorted(anchors)
        if anchors[0][0] != 0.0 or anchors[-1][0] != 1.0:
            raise ValueError("anchors must span quantiles 0.0 .. 1.0")
        for (q0, v0), (q1, v1) in zip(anchors, anchors[1:]):
            if q1 <= q0:
                raise ValueError(f"non-increasing quantiles: {q0}, {q1}")
            if v1 < v0:
                raise ValueError(f"decreasing values: {v0}, {v1}")
        self.anchors = anchors

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` by linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        anchors = self.anchors
        for (q0, v0), (q1, v1) in zip(anchors, anchors[1:]):
            if q <= q1:
                fraction = (q - q0) / (q1 - q0)
                return v0 + fraction * (v1 - v0)
        return anchors[-1][1]  # pragma: no cover - q == 1.0 handled above

    def sample_ms(self, rng: SplitMix64) -> float:
        return self.quantile(rng.random())

    def median_ms(self) -> float:
        return self.quantile(0.5)


#: §6.6: two well-provisioned universities on the U.S. East coast.
EAST_COAST_JITTER = QuantileJitter([
    (0.0, 0.01),
    (0.5, 0.18),
    (0.9, 0.80),
    (0.99, 3.91),
    (1.0, 8.0),
])

#: §6.9 / [18]: residential broadband, median ≈ 2.5 ms.
BROADBAND_JITTER = QuantileJitter([
    (0.0, 0.2),
    (0.5, 2.5),
    (0.9, 8.0),
    (0.99, 25.0),
    (1.0, 60.0),
])

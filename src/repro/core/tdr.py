"""High-level TDR orchestration: play, replay, compare.

The auditing workflow of §5.3: record an execution's nondeterministic
inputs during play, hand the log to an auditor, and let the auditor replay
it with TDR on another machine of the same type using a known-good binary.
The packet timing during replay is what the timing "ought to have been";
deviations indicate a different machine type (§2.1 scenario a) or tampered
software such as a covert timing channel (scenario b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import AuditReport, compare_traces
from repro.core.log import EventLog
from repro.errors import ReplayError
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult, Machine
from repro.machine.workload import Workload
from repro.vm.program import Program


def play(program: Program, config: MachineConfig | None = None,
         workload: Workload | None = None, seed: int = 0,
         covert_enabled: bool = False,
         covert_schedule: list[int] | None = None,
         max_instructions: int | None = 200_000_000,
         obs=None) -> ExecutionResult:
    """Run the original execution, recording a log of its inputs."""
    machine = Machine(config or MachineConfig(), seed=seed, mode="play",
                      workload=workload, covert_enabled=covert_enabled,
                      covert_schedule=covert_schedule, obs=obs)
    return machine.run(program, max_instructions=max_instructions)


def replay(program: Program, log: EventLog,
           config: MachineConfig | None = None, seed: int = 1,
           max_instructions: int | None = 200_000_000,
           obs=None) -> ExecutionResult:
    """Time-deterministically replay a recorded log.

    ``seed`` deliberately defaults to a different value than
    :func:`play`'s: the replay machine's *noise* (bus contention,
    speculation) is genuinely different hardware state — only the logged
    inputs are reproduced.  Use the same seed to check simulator
    determinism instead.
    """
    machine = Machine(config or MachineConfig(), seed=seed, mode="replay",
                      log=log, obs=obs)
    return machine.run(program, max_instructions=max_instructions)


def replay_naive(program: Program, log: EventLog,
                 config: MachineConfig | None = None, seed: int = 1,
                 max_instructions: int | None = 200_000_000,
                 obs=None) -> ExecutionResult:
    """Replay with the functional-only baseline replayer (Fig 3)."""
    machine = Machine(config or MachineConfig(), seed=seed,
                      mode="naive-replay", log=log, obs=obs)
    return machine.run(program, max_instructions=max_instructions)


@dataclass
class TdrResult:
    """A full play-then-replay round trip plus its audit."""

    play: ExecutionResult
    replay: ExecutionResult
    audit: AuditReport
    #: Run-store id of the persisted round trip, when one was requested.
    run_id: str | None = None


def persist_round_trip(runstore, outcome: TdrResult, obs=None,
                       label: str = "", kind: str = "roundtrip") -> str:
    """Save one round trip's full evidence to a run store.

    Persists both sides' cycle-attribution ledgers (with Table-1 render
    specs so a report reproduces the run-time tables verbatim), the audit
    verdicts, the divergence flight record if the audit captured one, and
    — when an observability bundle is passed — its metrics snapshot and
    span-trace NDJSON.  Returns the content-addressed run id.
    """
    from repro.obs.runstore import RunRecord

    ledgers: dict = {}
    tables = []
    figures: dict = {}
    for side, result in (("play", outcome.play),
                         ("replay", outcome.replay)):
        if result.ledger:
            ledgers[side] = dict(result.ledger)
            tables.append({"ledger": side,
                           "total_cycles": result.total_cycles,
                           "title": f"{side} ({result.config_name}, "
                                    f"{result.total_cycles:,} cycles)"})
        # Profiles and the tier-up region summary persist per side, so
        # stored runs can be profiled (and compiled regions annotated)
        # after the fact.
        if result.profile is not None:
            figures.setdefault("profile", {})[side] = result.profile
        if result.jit is not None:
            figures.setdefault("jit", {})[side] = result.jit
    if tables:
        figures["table1"] = {"tables": tables}
    audit = outcome.audit
    verdicts = {"payloads_match": audit.payloads_match,
                "consistent": audit.is_consistent(),
                "num_packets": audit.num_packets,
                "total_time_error": audit.total_time_error,
                "max_rel_ipd_diff": audit.max_rel_ipd_diff}
    record = RunRecord(
        kind=kind, label=label,
        config={"name": outcome.play.config_name},
        program=f"entry:{getattr(outcome.play, 'mode', 'play')}",
        seeds=[outcome.play.seed, outcome.replay.seed],
        metrics=obs.registry.snapshot() if obs is not None else {},
        ledgers=ledgers,
        verdicts=verdicts,
        figures=figures,
        flights=([audit.flight.to_json_dict()]
                 if audit.flight is not None else []),
        trace_ndjson=(obs.tracer.to_ndjson()
                      if obs is not None and obs.tracer is not None
                      else ""))
    return runstore.save(record)


def round_trip(program: Program, config: MachineConfig | None = None,
               workload: Workload | None = None, play_seed: int = 0,
               replay_seed: int = 1, covert_enabled: bool = False,
               covert_schedule: list[int] | None = None,
               replay_config: MachineConfig | None = None,
               max_instructions: int | None = 200_000_000,
               obs=None, replay_cache=None, runstore=None,
               run_label: str = "") -> TdrResult:
    """Play, replay, and audit in one call.

    ``replay_config`` defaults to ``config`` (same machine type T); pass a
    different type to model the Alice/Bob machine-substitution scenario.
    ``covert_schedule`` installs the channel encoder's delay schedule on
    the play machine only — the audit replay runs clean, which is exactly
    what makes the channel detectable (§5.3).  Pass a
    :class:`~repro.core.replay_cache.ReplayCache` as ``replay_cache`` to
    memoize the reference replay across round trips that share a log —
    replay is deterministic, so a hit is bit-identical to re-execution.
    Pass a :class:`~repro.obs.runstore.RunStore` as ``runstore`` to
    persist the round trip's ledgers, verdicts, and (with ``obs``) trace;
    the saved id comes back on :attr:`TdrResult.run_id`.
    """
    play_result = play(program, config, workload, seed=play_seed,
                       covert_enabled=covert_enabled,
                       covert_schedule=covert_schedule,
                       max_instructions=max_instructions, obs=obs)
    if play_result.log is None:
        raise ReplayError(
            f"play produced no log (mode={play_result.mode!r}, "
            f"config={play_result.config_name!r}, "
            f"seed={play_result.seed}, "
            f"instructions={play_result.instructions})")
    replay_fn = replay_cache.replay if replay_cache is not None else replay
    replay_result = replay_fn(program, play_result.log,
                              replay_config or config, seed=replay_seed,
                              max_instructions=max_instructions, obs=obs)
    report = compare_traces(play_result, replay_result)
    result = TdrResult(play_result, replay_result, report)
    if runstore is not None:
        result.run_id = persist_round_trip(runstore, result, obs=obs,
                                           label=run_label)
    return result

"""Record/replay sessions driven by the timed core.

A :class:`Session` is the mode-dependent half of the record/replay
machinery: the timed core's natives call into it whenever a
nondeterministic event happens (a ``nano_time`` read, an incoming packet
check).  Three implementations exist:

* :class:`PlaySession` — records events into an :class:`EventLog`;
* :class:`ReplaySession` — TDR replay: injects logged events at the same
  instruction counts, through the same symmetric access paths, with zero
  extra cost relative to play;
* :class:`NaiveReplaySession` — the functional-replay baseline of Fig 3
  (an XenTT-like system): functionally correct, but it *skips* idle waits
  and pays an asymmetric per-event injection overhead, so its timing
  diverges from play in both directions.

The session interface is deliberately identical across modes so the timed
core executes the same code path regardless of mode — that code path's
*cost symmetry* is what §3.5 is about.
"""

from __future__ import annotations

import abc

from repro.core.log import EventKind, EventLog
from repro.core.symmetric import (PLAY_MASK, REPLAY_MASK, SymmetricCell,
                                  symmetric_access)
from repro.errors import ReplayDivergenceError

#: Virtual address of the T-S buffer cell used for time events.
TS_TIME_CELL_VADDR = 0x0030_0000


class Session(abc.ABC):
    """Mode-dependent event handling with a mode-independent interface."""

    #: playMask (§3.5): all-ones during play, zero during replay.
    play_mask: int

    def __init__(self) -> None:
        self.time_cell = SymmetricCell(TS_TIME_CELL_VADDR)
        self.events_handled = 0
        #: Optional :class:`repro.obs.tracer.SpanTracer`; when set (by the
        #: machine, from its obs bundle) each handled event emits an
        #: instant on the current run's track.  Purely observational.
        self.tracer = None

    @abc.abstractmethod
    def observe_time(self, instr_count: int, live_value_ns: int) -> int:
        """Handle a ``nano_time`` event; returns the value to hand the guest."""

    @abc.abstractmethod
    def packet_due(self, instr_count: int,
                   staged_packet: bytes | None) -> bytes | None:
        """Check for an input packet at this point of the execution.

        ``staged_packet`` is what the supporting core has staged in the S-T
        buffer (play mode); replay modes ignore it and consult the log.
        Returns the packet to deliver, or None.
        """

    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True when no further input events can arrive."""

    def observe_sched(self, instr_count: int, pid: int) -> None:
        """Handle an executive context-switch decision.

        Play records the chosen pid; replay verifies it against the log
        (the scheduler is deterministic, so the entry is a tamper check,
        not an input — see DESIGN.md §5).  Sessions that never host an
        executive simply never see this call.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support executive runs")

    #: Extra cycles charged per injected event (0 for symmetric designs).
    injection_overhead_cycles: int = 0

    #: Whether idle waits are skipped rather than re-executed (Fig 3).
    skips_waits: bool = False

    def wait_target(self, instr_count: int) -> int | None:
        """For wait-skipping replayers: the instruction count to jump to."""
        return None


class PlaySession(Session):
    """The original execution: record every nondeterministic event."""

    play_mask = PLAY_MASK

    def __init__(self, log: EventLog | None = None) -> None:
        super().__init__()
        self.log = log if log is not None else EventLog()

    def observe_time(self, instr_count: int, live_value_ns: int) -> int:
        value, _ = symmetric_access(live_value_ns, self.time_cell,
                                    self.play_mask)
        self.log.record_time(instr_count, value)
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.time", category="session",
                                instr=instr_count)
        return value

    def packet_due(self, instr_count: int,
                   staged_packet: bytes | None) -> bytes | None:
        if staged_packet is None:
            return None
        self.log.record_packet(instr_count, staged_packet)
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.packet", category="session",
                                instr=instr_count,
                                size=len(staged_packet))
        return staged_packet

    def observe_sched(self, instr_count: int, pid: int) -> None:
        self.log.record_sched(instr_count, pid)
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.sched", category="session",
                                instr=instr_count, pid=pid)

    def exhausted(self) -> bool:
        return False  # the outside world decides when input ends


class ReplaySession(Session):
    """Time-deterministic replay: same events, same points, same costs."""

    play_mask = REPLAY_MASK

    def __init__(self, log: EventLog) -> None:
        super().__init__()
        self.log = log
        self._cursor = 0
        #: Largest observed (current - recorded) instruction-count slack for
        #: packet injections; nonzero values indicate imperfect alignment.
        self.max_injection_slack = 0

    def _peek(self):
        if self._cursor < len(self.log.entries):
            return self.log.entries[self._cursor]
        return None

    def observe_time(self, instr_count: int, live_value_ns: int) -> int:
        entry = self._peek()
        if entry is None or entry.kind != EventKind.TIME:
            raise ReplayDivergenceError(
                f"replay asked for a TIME event at instr {instr_count}, "
                f"log has {entry.kind.name if entry else 'nothing'}")
        if entry.instr_count != instr_count:
            raise ReplayDivergenceError(
                f"TIME event recorded at instr {entry.instr_count}, "
                f"replayed at {instr_count}")
        self._cursor += 1
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.time", category="session",
                                instr=instr_count)
        # Pre-stage the logged value in the T-S cell (the supporting core's
        # job during replay, §3.4), then run the same symmetric access.
        self.time_cell.stored = entry.value
        value, _ = symmetric_access(live_value_ns, self.time_cell,
                                    self.play_mask)
        return value

    def packet_due(self, instr_count: int,
                   staged_packet: bytes | None) -> bytes | None:
        entry = self._peek()
        if entry is None or entry.kind != EventKind.PACKET:
            return None
        if entry.instr_count > instr_count:
            return None
        self.max_injection_slack = max(
            self.max_injection_slack, instr_count - entry.instr_count)
        self._cursor += 1
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.packet", category="session",
                                instr=instr_count,
                                slack=instr_count - entry.instr_count,
                                size=len(entry.payload))
        return entry.payload

    def observe_sched(self, instr_count: int, pid: int) -> None:
        entry = self._peek()
        if entry is None or entry.kind != EventKind.SCHED:
            raise ReplayDivergenceError(
                f"replay reached a schedule decision at instr "
                f"{instr_count}, log has "
                f"{entry.kind.name if entry else 'nothing'}")
        if entry.instr_count != instr_count:
            raise ReplayDivergenceError(
                f"SCHED decision recorded at instr {entry.instr_count}, "
                f"replayed at {instr_count}")
        if entry.value != pid:
            raise ReplayDivergenceError(
                f"SCHED decision at instr {instr_count} chose pid "
                f"{entry.value} during play but pid {pid} during replay")
        self._cursor += 1
        self.events_handled += 1
        if self.tracer is not None:
            self.tracer.instant("event.sched", category="session",
                                instr=instr_count, pid=pid)

    def exhausted(self) -> bool:
        return self._cursor >= len(self.log.entries)

    def packet_pending(self) -> bool:
        """Can a packet-wait ever be satisfied from the log?

        While the guest blocks inside a packet wait, nothing else can
        consume log entries — so if the next entry is not a PACKET, the
        wait is hopeless.  An honest log never ends up in that state (a
        wait that was satisfied during play is fronted by its packet
        entry); a damaged or tampered one can, and the replayed guest
        must see "input ended" instead of polling forever.
        """
        entry = self._peek()
        return entry is not None and entry.kind == EventKind.PACKET

    def remaining_events(self) -> int:
        return len(self.log.entries) - self._cursor


class NaiveReplaySession(ReplaySession):
    """Functional-only replay, as in conventional replay systems (Fig 3).

    Two asymmetries relative to play:

    * **Wait skipping** — "There are some phases in which replay is faster
      than play ... in which the VMM was waiting for inputs; XenTT simply
      skips this phase during replay."  :meth:`wait_target` lets the
      blocking-receive native jump the instruction counter straight to the
      next logged event instead of re-executing the poll loop.
    * **Injection overhead** — record and replay "involve different code,
      different I/O operations, and different memory accesses"; each
      injected event costs extra cycles (reading the log from storage,
      branchy flag checks), making busy phases *slower* than play.
    """

    skips_waits = True
    #: Per-event replay-side overhead: log read + asymmetric code path.
    injection_overhead_cycles = 220_000

    def wait_target(self, instr_count: int) -> int | None:
        entry = self._peek()
        if entry is None:
            return None
        if entry.kind != EventKind.PACKET:
            return None
        if entry.instr_count <= instr_count:
            return instr_count
        return entry.instr_count

"""The event log of nondeterministic inputs.

"During the original execution ('play'), we record all nondeterministic
events in a log, and during the reproduced execution ('replay'), we inject
the same events at the same points" (§3.2).  Points are identified by the
VM's global instruction counter.

Two event kinds exist, matching the paper's accounting (§6.5: "the logs
mostly contained incoming network packets (84% in our trace) ... a small
fraction consisted of other entries, e.g., entries that record the
wall-clock time during play when the VM invokes System.nanoTime"):

* ``PACKET`` — an incoming network packet, recorded in its entirety;
* ``TIME`` — the value returned by a ``nano_time`` call.

A third kind, ``SCHED``, exists for multi-process (executive) runs: each
context-switch decision is logged as if it were a nondeterministic input,
with the chosen pid in the value field.  The executive's scheduler is in
fact deterministic, so during replay the entry is *verified* against the
recomputed decision rather than injected — a divergence means the log was
tampered with or the schedule was perturbed, and replay stops with a
:class:`~repro.errors.ReplayDivergenceError` (see DESIGN.md §5).

Outgoing packets are *not* logged: "packets that the NFS server transmits
need not be recorded because the replayed execution will produce an exact
copy" (§6.5).

The binary serialization exists so log sizes can be measured the same way
the paper measures them (bytes on stable storage).

The auditor receives the log from a machine it does not trust, over a
network that may damage it (§5.3), so the current wire format (version 2)
frames every entry with a CRC32 and closes the log with a whole-log
SHA-256 digest: a flipped bit anywhere is reported as a
:class:`~repro.errors.LogFormatError` carrying the offending entry index
and byte offset.  Version-1 logs (no integrity framing) still parse.
:meth:`EventLog.parse_prefix` is the tolerant variant: instead of raising
it returns the longest intact prefix plus a description of the damage,
which is what the resilient audit pipeline salvages from.
"""

from __future__ import annotations

import enum
import hashlib
import struct
import zlib
from dataclasses import dataclass

from repro.errors import LogFormatError

_MAGIC = b"TDRL"
_VERSION = 2
_V1 = 1
_HEADER = struct.Struct("<4sHI")       # magic, version, entry count
# The entry length is parsed *signed* so a crafted header that would read
# as a huge unsigned count is rejected as "negative" instead of driving a
# multi-gigabyte slice.
_ENTRY_HEAD = struct.Struct("<BQi")    # kind, instruction count, length
_ENTRY_CRC = struct.Struct("<I")       # CRC32 of entry head + body (v2)
_DIGEST_BYTES = 32                     # SHA-256 whole-log digest (v2)


class EventKind(enum.IntEnum):
    """Kinds of logged nondeterministic events."""

    PACKET = 1
    TIME = 2
    SCHED = 3


@dataclass(frozen=True)
class LogEntry:
    """One nondeterministic event, keyed by the instruction counter."""

    kind: EventKind
    instr_count: int
    payload: bytes = b""
    value: int = 0

    def encoded_size(self, version: int = _VERSION) -> int:
        """Bytes this entry occupies in the serialized log."""
        body = len(self.payload) if self.kind == EventKind.PACKET else 8
        crc = _ENTRY_CRC.size if version >= 2 else 0
        return _ENTRY_HEAD.size + body + crc


@dataclass
class PartialParse:
    """Outcome of tolerantly parsing a (possibly damaged) serialized log.

    ``log`` holds the longest intact prefix; ``error`` describes the first
    damage found (None when the whole log parsed clean).
    """

    log: "EventLog"
    version: int
    declared_entries: int
    intact_entries: int
    consumed_bytes: int
    error: LogFormatError | None
    #: v2 only: whether the whole-log digest checked out (None for v1 or
    #: when the parse failed before the digest could be checked).
    digest_ok: bool | None

    @property
    def complete(self) -> bool:
        """Did every declared entry (and the digest) parse clean?"""
        return self.error is None

    @property
    def intact_fraction(self) -> float:
        """Fraction of declared entries recovered intact."""
        if self.declared_entries <= 0:
            return 1.0 if self.complete else 0.0
        return self.intact_entries / self.declared_entries


class EventLog:
    """An append-only log of nondeterministic events."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record_packet(self, instr_count: int, payload: bytes) -> None:
        """Record an incoming packet observed at ``instr_count``."""
        self._check_monotonic(instr_count)
        self.entries.append(LogEntry(EventKind.PACKET, instr_count,
                                     payload=payload))

    def record_time(self, instr_count: int, value_ns: int) -> None:
        """Record a ``nano_time`` result observed at ``instr_count``."""
        self._check_monotonic(instr_count)
        self.entries.append(LogEntry(EventKind.TIME, instr_count,
                                     value=value_ns))

    def record_sched(self, instr_count: int, pid: int) -> None:
        """Record an executive context-switch decision at ``instr_count``."""
        self._check_monotonic(instr_count)
        self.entries.append(LogEntry(EventKind.SCHED, instr_count,
                                     value=pid))

    def _check_monotonic(self, instr_count: int) -> None:
        if self.entries and instr_count < self.entries[-1].instr_count:
            raise LogFormatError(
                f"log entries must be appended in instruction order: "
                f"{instr_count} after {self.entries[-1].instr_count}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- size accounting (§6.5) ---------------------------------------------

    def size_bytes(self, version: int = _VERSION) -> int:
        """Total serialized size."""
        trailer = _DIGEST_BYTES if version >= 2 else 0
        return (_HEADER.size + trailer
                + sum(e.encoded_size(version) for e in self.entries))

    def size_breakdown(self, version: int = _VERSION) -> dict[str, int]:
        """Bytes per event kind (plus the fixed header and digest)."""
        trailer = _DIGEST_BYTES if version >= 2 else 0
        breakdown = {"header": _HEADER.size + trailer,
                     "packet": 0, "time": 0, "sched": 0}
        for entry in self.entries:
            if entry.kind == EventKind.PACKET:
                key = "packet"
            elif entry.kind == EventKind.SCHED:
                key = "sched"
            else:
                key = "time"
            breakdown[key] += entry.encoded_size(version)
        return breakdown

    # -- serialization ---------------------------------------------------------

    def to_bytes(self, version: int = _VERSION) -> bytes:
        """Serialize to the on-disk format (version 2 unless asked for 1)."""
        if version not in (_V1, _VERSION):
            raise LogFormatError(f"cannot serialize log version {version}")
        chunks = [_HEADER.pack(_MAGIC, version, len(self.entries))]
        for entry in self.entries:
            if entry.kind == EventKind.PACKET:
                body = entry.payload
            else:
                body = struct.pack("<q", entry.value)
            head = _ENTRY_HEAD.pack(int(entry.kind), entry.instr_count,
                                    len(body))
            chunks.append(head)
            chunks.append(body)
            if version >= 2:
                chunks.append(_ENTRY_CRC.pack(zlib.crc32(head + body)))
        if version >= 2:
            chunks.append(hashlib.sha256(b"".join(chunks)).digest())
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EventLog":
        """Parse the on-disk format; raises on any damage."""
        parse = cls.parse_prefix(data)
        if parse.error is not None:
            raise parse.error
        return parse.log

    @classmethod
    def parse_prefix(cls, data: bytes) -> "PartialParse":
        """Tolerantly parse as many intact leading entries as possible.

        Never raises: framing damage is reported through
        :attr:`PartialParse.error` while :attr:`PartialParse.log` holds
        the longest prefix that parsed (and, for v2, CRC-checked) clean —
        the raw material for :func:`repro.core.resilience.audit_resilient`
        salvage.
        """
        log = cls()

        def failed(error: LogFormatError, offset: int,
                   declared: int = 0, version: int = 0) -> "PartialParse":
            return PartialParse(log=log, version=version,
                                declared_entries=declared,
                                intact_entries=len(log.entries),
                                consumed_bytes=offset, error=error,
                                digest_ok=False if version >= 2 else None)

        if len(data) < _HEADER.size:
            return failed(LogFormatError("truncated log header"), 0)
        magic, version, count = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            return failed(LogFormatError(f"bad log magic {magic!r}"), 0)
        if version not in (_V1, _VERSION):
            return failed(
                LogFormatError(f"unsupported log version {version}"), 0)

        offset = _HEADER.size
        last_instr = -1
        for index in range(count):
            entry_offset = offset
            if offset + _ENTRY_HEAD.size > len(data):
                return failed(LogFormatError("truncated log entry header",
                                             index, entry_offset),
                              entry_offset, count, version)
            kind_value, instr_count, length = _ENTRY_HEAD.unpack_from(
                data, offset)
            offset += _ENTRY_HEAD.size
            if length < 0:
                return failed(
                    LogFormatError(f"negative declared entry length "
                                   f"{length}", index, entry_offset),
                    entry_offset, count, version)
            try:
                kind = EventKind(kind_value)
            except ValueError:
                return failed(
                    LogFormatError(f"unknown event kind {kind_value}",
                                   index, entry_offset),
                    entry_offset, count, version)
            if instr_count < last_instr:
                return failed(
                    LogFormatError(
                        f"non-monotonic instruction count {instr_count} "
                        f"after {last_instr}", index, entry_offset),
                    entry_offset, count, version)
            if offset + length > len(data):
                return failed(LogFormatError("truncated log entry body",
                                             index, entry_offset),
                              entry_offset, count, version)
            body = data[offset:offset + length]
            offset += length
            if version >= 2:
                if offset + _ENTRY_CRC.size > len(data):
                    return failed(
                        LogFormatError("truncated entry CRC", index,
                                       entry_offset),
                        entry_offset, count, version)
                (stored_crc,) = _ENTRY_CRC.unpack_from(data, offset)
                offset += _ENTRY_CRC.size
                head = data[entry_offset:entry_offset + _ENTRY_HEAD.size]
                if stored_crc != zlib.crc32(head + body):
                    return failed(LogFormatError("entry CRC32 mismatch",
                                                 index, entry_offset),
                                  entry_offset, count, version)
            if kind == EventKind.PACKET:
                log.entries.append(LogEntry(kind, instr_count,
                                            payload=body))
            else:
                if length != 8:
                    return failed(
                        LogFormatError(f"{kind.name} entry body must be "
                                       f"8 bytes", index, entry_offset),
                        entry_offset, count, version)
                (value,) = struct.unpack("<q", body)
                log.entries.append(LogEntry(kind, instr_count, value=value))
            last_instr = instr_count

        digest_ok: bool | None = None
        if version >= 2:
            if len(data) - offset < _DIGEST_BYTES:
                return failed(LogFormatError("truncated whole-log digest",
                                             byte_offset=offset),
                              offset, count, version)
            expected = hashlib.sha256(data[:offset]).digest()
            stored = data[offset:offset + _DIGEST_BYTES]
            digest_ok = stored == expected
            offset += _DIGEST_BYTES
            if not digest_ok:
                return failed(
                    LogFormatError("whole-log digest mismatch",
                                   byte_offset=offset - _DIGEST_BYTES),
                    offset, count, version)
        if offset != len(data):
            return failed(
                LogFormatError(f"{len(data) - offset} trailing bytes",
                               byte_offset=offset),
                offset, count, version)
        return PartialParse(log=log, version=version,
                            declared_entries=count,
                            intact_entries=len(log.entries),
                            consumed_bytes=offset, error=None,
                            digest_ok=digest_ok)

    def growth_rate_kb_per_minute(self, duration_ns: float) -> float:
        """Log growth rate for a trace of the given duration (§6.5)."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        minutes = duration_ns / 60e9
        return self.size_bytes() / 1024.0 / minutes

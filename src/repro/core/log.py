"""The event log of nondeterministic inputs.

"During the original execution ('play'), we record all nondeterministic
events in a log, and during the reproduced execution ('replay'), we inject
the same events at the same points" (§3.2).  Points are identified by the
VM's global instruction counter.

Two event kinds exist, matching the paper's accounting (§6.5: "the logs
mostly contained incoming network packets (84% in our trace) ... a small
fraction consisted of other entries, e.g., entries that record the
wall-clock time during play when the VM invokes System.nanoTime"):

* ``PACKET`` — an incoming network packet, recorded in its entirety;
* ``TIME`` — the value returned by a ``nano_time`` call.

Outgoing packets are *not* logged: "packets that the NFS server transmits
need not be recorded because the replayed execution will produce an exact
copy" (§6.5).

The binary serialization exists so log sizes can be measured the same way
the paper measures them (bytes on stable storage).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import LogFormatError

_MAGIC = b"TDRL"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")       # magic, version, entry count
_ENTRY_HEAD = struct.Struct("<BQI")    # kind, instruction count, length


class EventKind(enum.IntEnum):
    """Kinds of logged nondeterministic events."""

    PACKET = 1
    TIME = 2


@dataclass(frozen=True)
class LogEntry:
    """One nondeterministic event, keyed by the instruction counter."""

    kind: EventKind
    instr_count: int
    payload: bytes = b""
    value: int = 0

    def encoded_size(self) -> int:
        """Bytes this entry occupies in the serialized log."""
        body = len(self.payload) if self.kind == EventKind.PACKET else 8
        return _ENTRY_HEAD.size + body


class EventLog:
    """An append-only log of nondeterministic events."""

    def __init__(self) -> None:
        self.entries: list[LogEntry] = []

    def record_packet(self, instr_count: int, payload: bytes) -> None:
        """Record an incoming packet observed at ``instr_count``."""
        self._check_monotonic(instr_count)
        self.entries.append(LogEntry(EventKind.PACKET, instr_count,
                                     payload=payload))

    def record_time(self, instr_count: int, value_ns: int) -> None:
        """Record a ``nano_time`` result observed at ``instr_count``."""
        self._check_monotonic(instr_count)
        self.entries.append(LogEntry(EventKind.TIME, instr_count,
                                     value=value_ns))

    def _check_monotonic(self, instr_count: int) -> None:
        if self.entries and instr_count < self.entries[-1].instr_count:
            raise LogFormatError(
                f"log entries must be appended in instruction order: "
                f"{instr_count} after {self.entries[-1].instr_count}")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # -- size accounting (§6.5) ---------------------------------------------

    def size_bytes(self) -> int:
        """Total serialized size."""
        return _HEADER.size + sum(e.encoded_size() for e in self.entries)

    def size_breakdown(self) -> dict[str, int]:
        """Bytes per event kind (plus the fixed header)."""
        breakdown = {"header": _HEADER.size, "packet": 0, "time": 0}
        for entry in self.entries:
            key = "packet" if entry.kind == EventKind.PACKET else "time"
            breakdown[key] += entry.encoded_size()
        return breakdown

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk format."""
        chunks = [_HEADER.pack(_MAGIC, _VERSION, len(self.entries))]
        for entry in self.entries:
            if entry.kind == EventKind.PACKET:
                body = entry.payload
            else:
                body = struct.pack("<q", entry.value)
            chunks.append(_ENTRY_HEAD.pack(int(entry.kind),
                                           entry.instr_count, len(body)))
            chunks.append(body)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EventLog":
        """Parse the on-disk format."""
        if len(data) < _HEADER.size:
            raise LogFormatError("truncated log header")
        magic, version, count = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise LogFormatError(f"bad log magic {magic!r}")
        if version != _VERSION:
            raise LogFormatError(f"unsupported log version {version}")
        log = cls()
        offset = _HEADER.size
        for _ in range(count):
            if offset + _ENTRY_HEAD.size > len(data):
                raise LogFormatError("truncated log entry header")
            kind_value, instr_count, length = _ENTRY_HEAD.unpack_from(
                data, offset)
            offset += _ENTRY_HEAD.size
            if offset + length > len(data):
                raise LogFormatError("truncated log entry body")
            body = data[offset:offset + length]
            offset += length
            try:
                kind = EventKind(kind_value)
            except ValueError:
                raise LogFormatError(f"unknown event kind {kind_value}")
            if kind == EventKind.PACKET:
                log.entries.append(LogEntry(kind, instr_count, payload=body))
            else:
                if length != 8:
                    raise LogFormatError("TIME entry body must be 8 bytes")
                (value,) = struct.unpack("<q", body)
                log.entries.append(LogEntry(kind, instr_count, value=value))
        if offset != len(data):
            raise LogFormatError(f"{len(data) - offset} trailing bytes")
        return log

    def growth_rate_kb_per_minute(self, duration_ns: float) -> float:
        """Log growth rate for a trace of the given duration (§6.5)."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        minutes = duration_ns / 60e9
        return self.size_bytes() / 1024.0 / minutes

"""Symmetric read/writes (§3.5, Figure 4).

The problem: logging an event naively would branch on a "replay flag" and
either *write* the value to the T-S buffer (play) or *read* it (replay) —
different control flow, different dirty cache lines, different BTB state.

The paper's fix::

    void accessInt(int *value, int *buf) {
        int temp = (*value) & playMask;
        temp = temp | (*buf & ~playMask);
        *value = *buf = temp;
    }

``playMask`` is all-ones during play and zero during replay, so the same
straight-line code selects the live value during play and the logged value
during replay, while touching the same memory locations in the same order.

:func:`symmetric_access` reproduces this computation bit-for-bit and
reports the memory addresses touched, so the timed-core platform can charge
the identical access sequence in both modes.  :class:`SymmetricCell` wraps
one T-S buffer slot.
"""

from __future__ import annotations

from dataclasses import dataclass

_MASK64 = (1 << 64) - 1

PLAY_MASK = _MASK64     # playMask during play
REPLAY_MASK = 0         # playMask during replay


@dataclass
class SymmetricCell:
    """One slot of the T-S buffer with a stable virtual address."""

    vaddr: int
    stored: int = 0


def symmetric_access(live_value: int, cell: SymmetricCell,
                     play_mask: int) -> tuple[int, tuple[int, int]]:
    """Figure 4's ``accessInt``.

    ``live_value`` is what would need to be recorded if this were play
    (e.g. the current wall-clock time); ``cell`` holds what would need to
    be returned if this were replay (the logged value, pre-staged by the
    supporting core).  Returns ``(selected_value, touched_addresses)``:
    during play the live value (now also stored in the cell, i.e. "logged");
    during replay the cell's value.  The touched addresses are identical in
    both modes — that is the whole point.
    """
    if play_mask not in (PLAY_MASK, REPLAY_MASK):
        raise ValueError(f"play_mask must be all-ones or zero, got "
                         f"{play_mask:#x}")
    temp = (live_value & play_mask) & _MASK64
    temp |= cell.stored & (~play_mask & _MASK64)
    cell.stored = temp
    # Reads *value and *buf, writes both: two addresses, same order in
    # both modes.  The live value lives in a register in our model, so the
    # data traffic is the cell plus the caller's result slot.
    return temp, (cell.vaddr, cell.vaddr)

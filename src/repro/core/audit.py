"""Auditing: compare an observed trace against its TDR replay (§5.3).

"In the absence of timing channels, the packet timing during replay should
match any observations during play; any significant deviation would be a
strong sign that a channel is present."

The comparison covers both what the paper plots in Fig 7 (per-IPD
differences between play and replay) and the total-execution-time accuracy
statistic of §6.4 (97% of replays within 1%, max 1.85%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReplayError
from repro.obs.flight import DivergenceRecord, capture_divergence


@dataclass
class AuditReport:
    """Outcome of comparing one observed trace with its replay."""

    num_packets: int
    payloads_match: bool
    play_total_ms: float
    replay_total_ms: float
    #: |replay - play| / play for the total execution time.
    total_time_error: float
    #: (play_ipd_ms, replay_ipd_ms) pairs — Fig 7's scatter data.
    ipd_pairs: list[tuple[float, float]] = field(default_factory=list)
    max_abs_ipd_diff_ms: float = 0.0
    max_rel_ipd_diff: float = 0.0
    mean_rel_ipd_diff: float = 0.0
    #: Flight-recorder capture when the audit found a divergence
    #: (payload mismatch or timing beyond the replay-accuracy bound).
    flight: DivergenceRecord | None = None

    def is_consistent(self, rel_threshold: float = 0.0185,
                      abs_threshold_ms: float = 0.05) -> bool:
        """Does the observed timing match the replay?

        A deviation counts only if it exceeds *both* the relative threshold
        (the paper's 1.85% replay accuracy) and an absolute floor (very
        short IPDs make relative error meaningless).
        """
        if not self.payloads_match:
            return False
        for play_ipd, replay_ipd in self.ipd_pairs:
            diff = abs(play_ipd - replay_ipd)
            baseline = max(replay_ipd, 1e-9)
            if diff > abs_threshold_ms and diff / baseline > rel_threshold:
                return False
        return True

    def deviation_score(self) -> float:
        """A scalar anomaly score: the largest absolute IPD deviation (ms).

        This is the discrimination statistic of the Sanity-based detector
        (§6.7): sweeping a threshold over it yields the ROC curve.
        """
        if not self.payloads_match:
            return float("inf")
        return self.max_abs_ipd_diff_ms


def _times_and_payloads(result) -> tuple[list[float], list[bytes]]:
    times = result.tx_times_ms()
    payloads = [payload for _, payload in result.tx]
    return times, payloads


def _build_report(play_times: list[float], replay_times: list[float],
                  payloads_match: bool, play_total_ms: float,
                  replay_total_ms: float) -> AuditReport:
    total_error = (abs(replay_total_ms - play_total_ms) / play_total_ms
                   if play_total_ms > 0 else 0.0)
    ipd_pairs: list[tuple[float, float]] = []
    max_abs = 0.0
    max_rel = 0.0
    rel_sum = 0.0
    for i in range(1, len(play_times)):
        play_ipd = play_times[i] - play_times[i - 1]
        replay_ipd = replay_times[i] - replay_times[i - 1]
        ipd_pairs.append((play_ipd, replay_ipd))
        diff = abs(play_ipd - replay_ipd)
        rel = diff / max(replay_ipd, 1e-9)
        max_abs = max(max_abs, diff)
        max_rel = max(max_rel, rel)
        rel_sum += rel
    mean_rel = rel_sum / len(ipd_pairs) if ipd_pairs else 0.0
    return AuditReport(
        num_packets=len(play_times),
        payloads_match=payloads_match,
        play_total_ms=play_total_ms,
        replay_total_ms=replay_total_ms,
        total_time_error=total_error,
        ipd_pairs=ipd_pairs,
        max_abs_ipd_diff_ms=max_abs,
        max_rel_ipd_diff=max_rel,
        mean_rel_ipd_diff=mean_rel)


def compare_traces(play_result, replay_result,
                   flight_n: int = 16) -> AuditReport:
    """Audit a play/replay pair of :class:`ExecutionResult` objects.

    On divergence the flight recorder captures the last ``flight_n``
    transmissions of each side plus the per-source cycle deltas (when the
    runs carried ledgers): on a packet-count mismatch the record rides on
    the raised :class:`ReplayError` as its ``flight`` attribute, otherwise
    it lands in :attr:`AuditReport.flight`.
    """
    play_times, play_payloads = _times_and_payloads(play_result)
    replay_times, replay_payloads = _times_and_payloads(replay_result)
    if len(play_times) != len(replay_times):
        record = capture_divergence(
            play_result, replay_result, last_n=flight_n,
            reason=f"packet count mismatch: play {len(play_times)}, "
                   f"replay {len(replay_times)}")
        error = ReplayError(
            f"functional divergence: play transmitted {len(play_times)} "
            f"packets, replay {len(replay_times)}\n{record.summary()}")
        error.flight = record
        raise error
    report = _build_report(play_times, replay_times,
                           play_payloads == replay_payloads,
                           play_result.total_ns * 1e-6,
                           replay_result.total_ns * 1e-6)
    if not report.payloads_match or not report.is_consistent():
        reason = ("payload mismatch" if not report.payloads_match
                  else f"IPD deviation {report.max_abs_ipd_diff_ms:.3f} ms "
                       f"beyond the replay-accuracy bound")
        report.flight = capture_divergence(play_result, replay_result,
                                           last_n=flight_n, reason=reason)
    return report


def compare_trace_prefix(play_result,
                         replay_result) -> tuple[AuditReport, int]:
    """Audit the longest matching packet prefix of a play/replay pair.

    The resilient audit path replays a salvaged log prefix, so the replay
    legitimately transmits fewer packets than play did.  Rather than
    raising on the count mismatch (as :func:`compare_traces` does), this
    compares the longest prefix on which the payloads agree and reports
    timing over that window; totals are measured at the last compared
    transmission.  Returns ``(report, matched_packets)``.
    """
    play_times, play_payloads = _times_and_payloads(play_result)
    replay_times, replay_payloads = _times_and_payloads(replay_result)
    matched = 0
    limit = min(len(play_times), len(replay_times))
    while (matched < limit
           and play_payloads[matched] == replay_payloads[matched]):
        matched += 1
    play_window = play_times[:matched]
    replay_window = replay_times[:matched]
    report = _build_report(
        play_window, replay_window,
        payloads_match=matched == limit,
        play_total_ms=play_window[-1] if play_window else 0.0,
        replay_total_ms=replay_window[-1] if replay_window else 0.0)
    return report, matched

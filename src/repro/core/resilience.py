"""The resilient audit pipeline: classify, salvage, never crash.

§5.3's auditor replays a log it received from a machine it does not
trust.  The happy path (:func:`repro.core.tdr.round_trip` +
:func:`repro.core.audit.compare_traces`) assumes the log arrived intact
and both executions completed; :func:`audit_resilient` removes both
assumptions.  It never raises — every input, however mangled, is turned
into a structured :class:`AuditOutcome` that says

* what happened (:class:`AuditClassification`: ``clean`` /
  ``transfer-degraded`` / ``log-corrupt`` / ``tamper-detected`` /
  ``replay-divergent``),
* how much of the observed execution could still be audited
  (:attr:`AuditOutcome.coverage`, via longest-intact-prefix replay
  through the :mod:`repro.core.segments` checkpoint machinery), and
* the timing verdict over the audited window
  (:attr:`AuditOutcome.consistent`).

Classification precedence, most definite first: a broken attestation
chain is proof of tampering regardless of other damage; a transfer that
exhausted its retry budget explains any truncation it caused; framing
damage marks the log corrupt; a log that frames clean but cannot be
replayed is divergent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.attestation import Authenticator, LogVerifier
from repro.core.audit import (AuditReport, compare_trace_prefix,
                              compare_traces)
from repro.core.log import EventLog, PartialParse
from repro.core.segments import (MachineCheckpoint, checkpoint_usable,
                                 replay_salvaged_prefix)
from repro.core.tdr import replay
from repro.errors import ReproError
from repro.faults.channel import TransferOutcome
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.obs.flight import DivergenceRecord, capture_divergence
from repro.vm.program import Program


class AuditClassification(str, enum.Enum):
    """What the resilient audit pipeline concluded about its input."""

    CLEAN = "clean"
    TRANSFER_DEGRADED = "transfer-degraded"
    LOG_CORRUPT = "log-corrupt"
    TAMPER_DETECTED = "tamper-detected"
    REPLAY_DIVERGENT = "replay-divergent"


class DegradationLevel(enum.IntEnum):
    """How much audit capability survived the damage."""

    NONE = 0        #: full log, full replay, full audit
    DEGRADED = 1    #: damage detected; a majority of the trace salvaged
    PARTIAL = 2     #: damage detected; a minority of the trace salvaged
    UNUSABLE = 3    #: nothing could be salvaged (or nothing trustworthy)


def _degradation_for(coverage: float) -> DegradationLevel:
    if coverage >= 0.5:
        return DegradationLevel.DEGRADED
    if coverage > 0.0:
        return DegradationLevel.PARTIAL
    return DegradationLevel.UNUSABLE


@dataclass
class AuditOutcome:
    """Structured result of :func:`audit_resilient`; never an exception."""

    classification: AuditClassification
    degradation: DegradationLevel
    #: Fraction of the observed transmissions the audit could still
    #: check (1.0 on the clean path, 0.0 when nothing was salvageable).
    coverage: float
    #: Timing verdict over the audited window: True/False from
    #: :meth:`AuditReport.is_consistent`, or None when the window was
    #: too small to judge.
    consistent: bool | None
    detail: str
    report: AuditReport | None = None
    parse: PartialParse | None = None
    transfer: TransferOutcome | None = None
    #: Result of checking the attestation chain (None: not checked or
    #: inconclusive because the damage removed the covered entries).
    attestation_ok: bool | None = None
    failure: ReproError | None = None
    salvaged_packets: int = 0
    #: Flight-recorder capture of the divergence, when one was found.
    flight: DivergenceRecord | None = None
    #: Run-store id of the persisted outcome, when one was requested.
    run_id: str | None = None

    @property
    def trustworthy(self) -> bool:
        """Can the timing verdict be acted on at all?"""
        return (self.classification != AuditClassification.TAMPER_DETECTED
                and self.coverage > 0.0)


@dataclass
class _TraceView:
    """Duck-typed :class:`ExecutionResult` slice for prefix comparison."""

    tx: list
    _times_ms: list = field(default_factory=list)

    def tx_times_ms(self) -> list[float]:
        return self._times_ms


def _outcome(classification: AuditClassification, coverage: float,
             consistent: bool | None, detail: str, **extra) -> AuditOutcome:
    if classification == AuditClassification.CLEAN:
        degradation = DegradationLevel.NONE
    elif classification == AuditClassification.TAMPER_DETECTED:
        degradation = DegradationLevel.UNUSABLE
    else:
        degradation = _degradation_for(coverage)
    return AuditOutcome(classification=classification,
                        degradation=degradation, coverage=coverage,
                        consistent=consistent, detail=detail, **extra)


def audit_resilient(program: Program, observed: ExecutionResult,
                    log_bytes: bytes | None = None, *,
                    config: MachineConfig | None = None,
                    transfer: TransferOutcome | None = None,
                    authenticator: Authenticator | None = None,
                    signing_key: bytes | None = None,
                    checkpoint: MachineCheckpoint | None = None,
                    replay_seed: int = 1,
                    max_instructions: int | None = 200_000_000,
                    obs=None, replay_cache=None,
                    runstore=None, run_label: str = "") -> AuditOutcome:
    """Audit ``observed`` against a possibly damaged serialized log.

    ``log_bytes`` is the log as received (defaults to
    ``transfer.data`` when a :class:`TransferOutcome` is given).  Pass
    ``authenticator`` + ``signing_key`` to check the PeerReview-style
    chain of :mod:`repro.core.attestation`, and a ``checkpoint`` from
    :func:`repro.core.segments.play_with_checkpoint` to let the salvage
    replay resume mid-log instead of re-executing from the start.  A
    :class:`~repro.core.replay_cache.ReplayCache` as ``replay_cache``
    memoizes the clean-path reference replay, so repeated audits of the
    same (or an identically surviving) log skip straight to comparison.
    A :class:`~repro.obs.runstore.RunStore` as ``runstore`` persists the
    outcome (classification, coverage, flight record, metrics) and sets
    :attr:`AuditOutcome.run_id`.

    Never raises: every failure mode becomes an :class:`AuditOutcome`.
    """
    try:
        outcome = _audit_resilient(program, observed, log_bytes,
                                   config=config, transfer=transfer,
                                   authenticator=authenticator,
                                   signing_key=signing_key,
                                   checkpoint=checkpoint,
                                   replay_seed=replay_seed,
                                   max_instructions=max_instructions,
                                   obs=obs, replay_cache=replay_cache)
    except Exception as exc:  # the never-raise guarantee is the contract
        failure = exc if isinstance(exc, ReproError) else None
        outcome = _outcome(
            AuditClassification.REPLAY_DIVERGENT, 0.0, None,
            f"audit pipeline failed: {type(exc).__name__}: {exc}",
            transfer=transfer, failure=failure,
            flight=getattr(exc, "flight", None))
    if obs is not None:
        if obs.tracer is not None:
            obs.tracer.instant(
                "audit.outcome", category="audit",
                classification=outcome.classification.value,
                coverage=round(outcome.coverage, 4),
                consistent=outcome.consistent)
        if obs.registry.enabled:
            registry = obs.registry
            registry.counter("tdr_audits_total",
                             "Resilient audits performed").inc()
            slug = outcome.classification.value.replace("-", "_")
            registry.counter(f"tdr_audits_{slug}_total",
                             f"Audits classified {outcome.classification.value}"
                             ).inc()
            registry.histogram(
                "tdr_audit_coverage", "Fraction of the trace audited",
                buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0)).observe(
                outcome.coverage)
    if runstore is not None:
        outcome.run_id = persist_audit_outcome(runstore, outcome, obs=obs,
                                               label=run_label)
    return outcome


def persist_audit_outcome(runstore, outcome: AuditOutcome, obs=None,
                          label: str = "") -> str:
    """Save one resilient-audit outcome (kind ``audit``) to a run store.

    The verdict set mirrors the chaos matrix's stdout columns; the flight
    record (when a divergence was captured) rides along as a JSON dict so
    the per-source cycle deltas survive persistence intact.
    """
    from repro.obs.runstore import RunRecord

    verdicts = {"classification": outcome.classification.value,
                "degradation": int(outcome.degradation),
                "coverage": outcome.coverage,
                "consistent": outcome.consistent,
                "trustworthy": outcome.trustworthy,
                "salvaged_packets": outcome.salvaged_packets,
                "detail": outcome.detail}
    if outcome.attestation_ok is not None:
        verdicts["attestation_ok"] = outcome.attestation_ok
    record = RunRecord(
        kind="audit", label=label,
        metrics=obs.registry.snapshot() if obs is not None else {},
        verdicts=verdicts,
        flights=([outcome.flight.to_json_dict()]
                 if outcome.flight is not None else []),
        trace_ndjson=(obs.tracer.to_ndjson()
                      if obs is not None and obs.tracer is not None
                      else ""))
    return runstore.save(record)


def _audit_resilient(program, observed, log_bytes, *, config, transfer,
                     authenticator, signing_key, checkpoint, replay_seed,
                     max_instructions, obs=None,
                     replay_cache=None) -> AuditOutcome:
    config = config or MachineConfig()
    if log_bytes is None and transfer is not None:
        log_bytes = transfer.data
    transfer_failed = transfer is not None and transfer.degraded
    if log_bytes is None:
        return _outcome(
            AuditClassification.TRANSFER_DEGRADED if transfer_failed
            else AuditClassification.LOG_CORRUPT,
            0.0, None, "no log bytes received", transfer=transfer)

    parse = EventLog.parse_prefix(log_bytes)

    attestation_ok: bool | None = None
    if authenticator is not None and signing_key is not None:
        attestation_ok = LogVerifier(signing_key).verify_available_prefix(
            parse.log, authenticator)
        if attestation_ok is False:
            return _outcome(
                AuditClassification.TAMPER_DETECTED, 0.0, None,
                "attestation chain mismatch: the surviving entries are "
                "not the ones the machine committed to",
                parse=parse, transfer=transfer, attestation_ok=False,
                failure=parse.error)

    # Clean path: the whole log arrived and framed correctly.
    if parse.complete and not transfer_failed:
        flight = None
        try:
            replay_fn = (replay_cache.replay if replay_cache is not None
                         else replay)
            replayed = replay_fn(program, parse.log, config,
                                 seed=replay_seed,
                                 max_instructions=max_instructions, obs=obs)
            report = compare_traces(observed, replayed)
            if report.payloads_match:
                return _outcome(
                    AuditClassification.CLEAN, 1.0,
                    report.is_consistent(),
                    "full log replayed; timing "
                    + ("consistent" if report.is_consistent()
                       else "deviates beyond the replay-accuracy bound"),
                    report=report, parse=parse, transfer=transfer,
                    attestation_ok=attestation_ok, flight=report.flight)
            divergence_detail = "replayed payloads differ from observed"
            flight = report.flight
        except ReproError as exc:
            divergence_detail = str(exc)
            flight = getattr(exc, "flight", None)
        # Framing was clean but the replay could not follow the log:
        # fall through and salvage whatever prefix still reproduces.
        return _salvage(program, observed, parse, config,
                        AuditClassification.REPLAY_DIVERGENT,
                        divergence_detail, transfer, attestation_ok,
                        checkpoint, replay_seed, max_instructions,
                        obs=obs, flight=flight)

    classification = (AuditClassification.TRANSFER_DEGRADED
                      if transfer_failed
                      else AuditClassification.LOG_CORRUPT)
    detail = (f"transfer degraded after "
              f"{transfer.retransmissions} retransmissions "
              f"({transfer.frames_delivered}/{transfer.total_frames} "
              f"frames)" if transfer_failed
              else f"log damaged: {parse.error}")
    return _salvage(program, observed, parse, config, classification,
                    detail, transfer, attestation_ok, checkpoint,
                    replay_seed, max_instructions, obs=obs)


def _salvage(program, observed, parse, config, classification, detail,
             transfer, attestation_ok, checkpoint, replay_seed,
             max_instructions, obs=None, flight=None) -> AuditOutcome:
    """Replay the longest intact prefix and measure what it still covers."""
    total_tx = len(observed.tx)
    prefix = parse.log
    resume = (checkpoint if checkpoint is not None
              and checkpoint_usable(checkpoint, parse.intact_entries)
              else None)
    if not prefix.entries and resume is None:
        return _outcome(classification, 0.0, None,
                        detail + "; nothing salvageable",
                        parse=parse, transfer=transfer,
                        attestation_ok=attestation_ok,
                        failure=parse.error, flight=flight)

    partial, diverged = replay_salvaged_prefix(
        program, prefix, config, seed=replay_seed, checkpoint=resume,
        max_instructions=max_instructions, obs=obs)

    if resume is not None:
        # The checkpoint certifies the auditor already replayed the
        # prefix it covers (segment auditing, §3.2); this replay only
        # has to re-establish the window between the checkpoint and the
        # damage.
        observed_view = _TraceView(
            tx=observed.tx[resume.tx_count:],
            _times_ms=observed.tx_times_ms()[resume.tx_count:])
        already_covered = min(resume.tx_count, total_tx)
    else:
        observed_view = _TraceView(tx=observed.tx,
                                   _times_ms=observed.tx_times_ms())
        already_covered = 0

    report, matched = compare_trace_prefix(observed_view, partial)
    covered = already_covered + matched
    coverage = (covered / total_tx if total_tx
                else parse.intact_fraction)
    coverage = min(coverage, 1.0)
    consistent = report.is_consistent() if matched >= 2 else None

    window = (f"salvaged {covered}/{total_tx} observed transmissions "
              f"from {parse.intact_entries} intact log entries")
    if resume is not None:
        window += f" (resumed from checkpoint at tx {resume.tx_count})"
    if diverged is not None:
        window += f"; prefix replay stopped at divergence: {diverged}"
    if flight is None and (diverged is not None or covered < total_tx):
        flight = capture_divergence(
            observed, partial,
            reason=(f"salvage divergence: {diverged}" if diverged is not None
                    else f"salvage covered {covered}/{total_tx} tx"))
    return _outcome(classification, coverage, consistent,
                    f"{detail}; {window}",
                    report=report, parse=parse, transfer=transfer,
                    attestation_ok=attestation_ok, failure=parse.error,
                    salvaged_packets=covered, flight=flight)

"""Content-addressed memoization of clean-reference replays.

Time-deterministic replay is a pure function: the result is fully
determined by (program, recorded log, machine config, replay seed,
instruction budget).  Pipelines exploit the purity — detector trials
score many observations against the same clean reference, and the
resilient audit path re-replays the same baseline log while classifying
damaged variants — but until now each of those re-executions paid the
full simulation cost.

:class:`ReplayCache` keys a bounded LRU map by a content address:

* the SHA-256 of the serialized event log (``EventLog.to_bytes``),
* a fingerprint of the machine configuration (its dataclass repr —
  stable, covers every timing knob),
* a fingerprint of the program (pickled once per program object),
* the replay seed and instruction budget, and
* whether observability was attached (an observed run carries ledger and
  opcode snapshots a bare run does not).

Because replay is deterministic, a hit returns a result bit-identical to
what re-execution would produce; the cache can therefore never change a
verdict, only skip work.  Hits hand out a deep copy so callers that
mutate their result (annotating stats, say) cannot poison later hits.

Hit/miss counts land on the metrics registry as
``tdr_replay_cache_hits_total`` / ``tdr_replay_cache_misses_total``,
with ``tdr_replay_cache_entries`` tracking occupancy.  A cache owned by
one verifier node can namespace its series per node
(``tdr_replay_cache_hits_total{node="node-03"}``) by passing ``node=``;
a shared tier hands out :meth:`ReplayCache.view` handles so several
nodes can share one content-addressed store while hits and misses stay
attributable to the node that made them.  The unlabelled series remains
the cross-node aggregate, so single-node callers see exactly the
pre-fleet behaviour.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
from collections import OrderedDict

from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.obs.metrics import MetricsRegistry, get_registry, labeled

__all__ = ["ReplayCache", "ReplayCacheView"]


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ReplayCache:
    """Bounded LRU cache of replay results, keyed by content.

    One instance per pipeline run is the intended scope (the CLI and the
    benches create one and thread it through); sharing across configs is
    safe because the config fingerprint is part of the key.
    """

    def __init__(self, maxsize: int = 128,
                 registry: MetricsRegistry | None = None,
                 node: str | None = None) -> None:
        self.maxsize = maxsize
        self.node = node
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._program_fps: dict[int, tuple[object, str]] = {}
        self.hits = 0
        self.misses = 0
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        suffix = {} if node is None else {"node": node}
        self._hits_metric = registry.counter(
            labeled("tdr_replay_cache_hits_total", **suffix),
            help="replay executions skipped via the memoization cache")
        self._misses_metric = registry.counter(
            labeled("tdr_replay_cache_misses_total", **suffix),
            help="replay executions that had to run the simulator")
        self._size_metric = registry.gauge(
            labeled("tdr_replay_cache_entries", **suffix),
            help="entries currently held by the replay cache")

    def _program_fp(self, program) -> str:
        # Pickling the program per replay call would eat the saving; memo
        # by object identity, holding a strong ref so the id stays valid.
        key = id(program)
        memo = self._program_fps.get(key)
        if memo is not None and memo[0] is program:
            return memo[1]
        fp = _digest(pickle.dumps(program, protocol=pickle.HIGHEST_PROTOCOL))
        self._program_fps[key] = (program, fp)
        return fp

    def _key(self, program, log, config: MachineConfig, seed: int,
             max_instructions: int | None, observed: bool) -> tuple:
        return (self._program_fp(program),
                _digest(repr(config).encode()),
                _digest(log.to_bytes()),
                seed, max_instructions, observed)

    def replay(self, program, log, config: MachineConfig | None = None,
               seed: int = 1, max_instructions: int | None = 200_000_000,
               obs=None) -> ExecutionResult:
        """:func:`repro.core.tdr.replay`, memoized.

        Signature-compatible with the uncached function, so call sites
        swap ``replay(...)`` for ``cache.replay(...)``.
        """
        from repro.core.tdr import replay as tdr_replay

        config = config or MachineConfig()
        key = self._key(program, log, config, seed, max_instructions,
                        obs is not None)
        cached = self._lookup(key)
        if cached is not None:
            self._count(hit=True)
            return copy.deepcopy(cached)
        self._count(hit=False)
        result = tdr_replay(program, log, config, seed=seed,
                            max_instructions=max_instructions, obs=obs)
        self._insert(key, result)
        return result

    # -- public fetch/store ------------------------------------------------
    #
    # The memoized replay() above covers the common case; callers that run
    # their replays elsewhere (the verifier service batches them over the
    # experiment fleet) use this pair to share the same content-addressed
    # LRU.  Values are deep-copied on both edges, so a hit can never leak
    # mutations between consumers — the isolation tests pin this.

    def fetch_value(self, program, log, config: MachineConfig | None = None,
                    seed: int = 1,
                    max_instructions: int | None = 200_000_000,
                    observed: bool = False):
        """Look up a previously stored value; None on miss (counted)."""
        config = config or MachineConfig()
        key = self._key(program, log, config, seed, max_instructions,
                        observed)
        cached = self._lookup(key)
        if cached is None:
            self._count(hit=False)
            return None
        self._count(hit=True)
        return copy.deepcopy(cached)

    def store_value(self, program, log, value,
                    config: MachineConfig | None = None, seed: int = 1,
                    max_instructions: int | None = 200_000_000,
                    observed: bool = False) -> None:
        """Insert ``value`` under the replay key (evicting LRU if full)."""
        config = config or MachineConfig()
        key = self._key(program, log, config, seed, max_instructions,
                        observed)
        self._insert(key, value)

    # -- storage internals (shared with per-node views) --------------------

    def _lookup(self, key: tuple):
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
        return cached

    def _insert(self, key: tuple, value) -> None:
        self._entries[key] = copy.deepcopy(value)
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        self._size_metric.set(len(self._entries))

    def _count(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            self._hits_metric.inc()
        else:
            self.misses += 1
            self._misses_metric.inc()

    def view(self, node: str,
             registry: MetricsRegistry | None = None) -> "ReplayCacheView":
        """A per-node handle onto this cache as a shared tier.

        Views share the one content-addressed store (a value stored
        through any handle is a hit through every other), but hits and
        misses are counted per view under ``...{node="..."}`` series —
        and folded into this tier's plain aggregate, which stays the
        single-node fallback.
        """
        return ReplayCacheView(self, node,
                               registry if registry is not None
                               else self._registry)

    def clear(self) -> None:
        self._entries.clear()
        self._program_fps.clear()
        self._size_metric.set(0)

    def __len__(self) -> int:
        return len(self._entries)


class ReplayCacheView:
    """One node's attribution window onto a shared :class:`ReplayCache`.

    Implements the same public ``fetch_value``/``store_value``/``hits``/
    ``misses`` surface as the tier itself, so schedulers take either
    interchangeably.
    """

    def __init__(self, tier: ReplayCache, node: str,
                 registry: MetricsRegistry | None = None) -> None:
        self.tier = tier
        self.node = node
        self.hits = 0
        self.misses = 0
        registry = registry if registry is not None else get_registry()
        self._hits_metric = registry.counter(
            labeled("tdr_replay_cache_hits_total", node=node),
            help="replay cache hits attributed to this verifier node")
        self._misses_metric = registry.counter(
            labeled("tdr_replay_cache_misses_total", node=node),
            help="replay cache misses attributed to this verifier node")

    def _count(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            self._hits_metric.inc()
        else:
            self.misses += 1
            self._misses_metric.inc()
        self.tier._count(hit)          # keep the aggregate series honest

    def fetch_value(self, program, log, config: MachineConfig | None = None,
                    seed: int = 1,
                    max_instructions: int | None = 200_000_000,
                    observed: bool = False):
        """Tier lookup, with the hit/miss attributed to this node."""
        config = config or MachineConfig()
        key = self.tier._key(program, log, config, seed, max_instructions,
                             observed)
        cached = self.tier._lookup(key)
        if cached is None:
            self._count(hit=False)
            return None
        self._count(hit=True)
        return copy.deepcopy(cached)

    def store_value(self, program, log, value,
                    config: MachineConfig | None = None, seed: int = 1,
                    max_instructions: int | None = 200_000_000,
                    observed: bool = False) -> None:
        """Insert into the shared tier (visible to every peer view)."""
        self.tier.store_value(program, log, value, config=config, seed=seed,
                              max_instructions=max_instructions,
                              observed=observed)

    def __len__(self) -> int:
        return len(self.tier)

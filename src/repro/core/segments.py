"""Machine-level segment replay (§3.2).

"If Sanity is used for long-running services — perhaps a web server,
which can run for months or even years — it is important to enable
auditors to reproduce smaller segments of the execution individually.
Like other deterministic replay systems, Sanity could provide
checkpointing for this purpose, and thus enable the auditor to replay any
segment that starts at a checkpoint."

A :class:`MachineCheckpoint` extends the VM snapshot of
:mod:`repro.core.checkpoint` with the machine-visible context a
time-deterministic resume needs: the virtual-clock reading and the log
position.  Resuming *quiesces* the machine first (§3.6: flush caches,
TLB, predictor) — the same trick that makes whole-execution replay
reproducible makes segment boundaries reproducible, at the cost of a
warm-up transient right after the boundary.

Workflow::

    observed, checkpoint = play_with_checkpoint(program, config,
                                                workload, at_instr=N)
    segment = replay_segment(program, observed.log, checkpoint, config)
    # segment.tx covers only transmissions after the checkpoint, with
    # timing consistent with the observed suffix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.checkpoint import (Checkpoint, restore_interpreter,
                                   snapshot_interpreter)
from repro.core.log import EventKind, EventLog
from repro.core.session import ReplaySession
from repro.errors import ReplayDivergenceError, ReplayError
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult, Machine
from repro.machine.workload import Workload
from repro.obs.ledger import Source
from repro.vm.interpreter import Interpreter
from repro.vm.program import Program


@dataclass
class MachineCheckpoint:
    """A resumable point of an execution."""

    vm_state: Checkpoint
    clock_cycles: int
    log_position: int           # events consumed before the checkpoint
    tx_count: int               # packets transmitted before the checkpoint
    covert_cursor: int


def play_with_checkpoint(program: Program, config: MachineConfig,
                         workload: Workload | None, at_instr: int,
                         seed: int = 0,
                         covert_schedule: list[int] | None = None,
                         max_instructions: int | None = 200_000_000,
                         obs=None) -> tuple[ExecutionResult,
                                            MachineCheckpoint]:
    """Play to completion, snapshotting state at instruction ``at_instr``.

    The checkpoint is taken the first time the instruction counter
    reaches ``at_instr`` (between instructions, as a real implementation
    would at a safepoint).
    """
    if at_instr <= 0:
        raise ReplayError("checkpoint instruction must be positive")
    machine = Machine(config, seed=seed, mode="play", workload=workload,
                      covert_schedule=covert_schedule, obs=obs)
    tracer = obs.tracer if obs is not None else None
    vm = Interpreter(program, machine.platform, machine.vm_config())
    machine.attach_observers(vm)
    if tracer is not None:
        tracer.bind(machine.clock.now_ns, track=f"play:{config.name}")
        tracer.begin("segments.play_with_checkpoint", at_instr=at_instr)
    if workload is not None:
        workload.start(machine)

    # Run up to the checkpoint, snapshot, then finish.
    vm.run(max_instructions=at_instr)
    machine.platform.flush_charges()   # the snapshot reads the clock
    if vm.instruction_count < at_instr:
        if tracer is not None:
            tracer.end("segments.play_with_checkpoint")
        raise ReplayError(
            f"execution ended at instruction {vm.instruction_count}, "
            f"before the requested checkpoint at {at_instr}")
    checkpoint = MachineCheckpoint(
        vm_state=snapshot_interpreter(vm),
        clock_cycles=machine.clock.cycles,
        log_position=len(machine.session.log.entries),
        tx_count=len(machine.platform.tx_trace),
        covert_cursor=machine._covert_cursor)
    if tracer is not None:
        tracer.instant("checkpoint.capture", category="checkpoint",
                       instruction=vm.instruction_count,
                       clock_cycles=checkpoint.clock_cycles,
                       tx_count=checkpoint.tx_count)
    remaining = (None if max_instructions is None
                 else max_instructions - at_instr)
    vm.run(max_instructions=remaining)
    machine.platform.flush_charges()
    if tracer is not None:
        tracer.end("segments.play_with_checkpoint",
                   total_cycles=machine.clock.cycles)

    machine._ran = True
    return machine.make_result(vm), checkpoint


def _replay_from(program: Program, log: EventLog,
                 checkpoint: MachineCheckpoint | None,
                 config: MachineConfig, seed: int,
                 max_instructions: int | None,
                 tolerate_divergence: bool,
                 obs=None) -> tuple[ExecutionResult,
                                    ReplayDivergenceError | None]:
    """Shared replay core: from a checkpoint, or from the very start.

    With ``tolerate_divergence`` the run survives a mid-execution
    :class:`ReplayDivergenceError` (a damaged log can end between a
    request and the event the guest asks for next) and still assembles
    the :class:`ExecutionResult` for whatever was reproduced before the
    divergence point.
    """
    machine = Machine(config, seed=seed, mode="replay", log=log, obs=obs)
    tracer = obs.tracer if obs is not None else None
    if checkpoint is not None:
        session = machine.session
        assert isinstance(session, ReplaySession)
        # Fast-forward the session past the events the prefix consumed.
        if checkpoint.log_position > len(log.entries):
            raise ReplayError("checkpoint log position beyond the log")
        session._cursor = checkpoint.log_position
        for entry in log.entries[:checkpoint.log_position]:
            if entry.kind == EventKind.PACKET:
                session.events_handled += 1
        # Restore machine context: clock and quiesced microarchitecture
        # (§3.6 — the checkpoint boundary behaves like an execution
        # start).
        machine.clock.advance(checkpoint.clock_cycles, Source.RESUME)
        machine.hierarchy.flush()
        machine.tlb.flush()
        machine.predictor.flush()
        machine._covert_cursor = checkpoint.covert_cursor

    vm = Interpreter(program, machine.platform, machine.vm_config())
    machine.attach_observers(vm)
    if checkpoint is not None:
        restore_interpreter(vm, checkpoint.vm_state)
    if tracer is not None:
        tracer.bind(machine.clock.now_ns, track=f"replay:{config.name}")
        tracer.begin("segments.replay",
                     from_checkpoint=checkpoint is not None)
    diverged: ReplayDivergenceError | None = None
    try:
        vm.run(max_instructions=max_instructions)
        machine.platform.flush_charges()
    except ReplayDivergenceError as exc:
        machine.platform.flush_charges()
        if not tolerate_divergence:
            if tracer is not None:
                tracer.end("segments.replay")
            raise
        diverged = exc
        if tracer is not None:
            tracer.instant("replay.divergence", category="audit",
                           detail=str(exc))
    if tracer is not None:
        tracer.end("segments.replay", total_cycles=machine.clock.cycles)

    machine._ran = True
    return machine.make_result(vm), diverged


def replay_segment(program: Program, log: EventLog,
                   checkpoint: MachineCheckpoint,
                   config: MachineConfig, seed: int = 1,
                   max_instructions: int | None = 200_000_000,
                   obs=None) -> ExecutionResult:
    """Replay the suffix of ``log`` starting from ``checkpoint``.

    Returns an :class:`ExecutionResult` whose transmissions and clock
    cover only the segment; transmission cycles are offset so they line
    up with the original execution's timeline (the clock is restored to
    the checkpoint's reading).
    """
    result, _ = _replay_from(program, log, checkpoint, config, seed,
                             max_instructions, tolerate_divergence=False,
                             obs=obs)
    return result


def checkpoint_usable(checkpoint: MachineCheckpoint,
                      intact_entries: int) -> bool:
    """Can a salvaged prefix of ``intact_entries`` resume from here?

    The checkpoint must lie inside the intact prefix: resuming past the
    damage would inject events we no longer trust.
    """
    return checkpoint.log_position <= intact_entries


def replay_salvaged_prefix(program: Program, log: EventLog,
                           config: MachineConfig, seed: int = 1,
                           checkpoint: MachineCheckpoint | None = None,
                           max_instructions: int | None = 200_000_000,
                           obs=None) -> tuple[ExecutionResult,
                                              ReplayDivergenceError | None]:
    """Replay the longest intact prefix of a damaged log.

    ``log`` should already be the salvaged prefix (see
    :meth:`EventLog.parse_prefix`).  The replay runs until the guest sees
    its input end; if the damage cut the log between a request and the
    next event the guest demands, the divergence is captured and returned
    alongside the partial result instead of being raised.  Pass a
    ``checkpoint`` that satisfies :func:`checkpoint_usable` to resume
    from it rather than re-executing from the start.
    """
    return _replay_from(program, log, checkpoint, config, seed,
                        max_instructions, tolerate_divergence=True, obs=obs)


def segment_of(result: ExecutionResult,
               checkpoint: MachineCheckpoint) -> list[tuple[int, bytes]]:
    """The post-checkpoint transmissions of a full-execution result."""
    return result.tx[checkpoint.tx_count:]

"""Tamper-evident event logs (the paper's §7 "Accountability" extension).

"Although TDR can detect inconsistencies between the timing of messages
and the machine configuration that supposedly produced them, it cannot
directly prove such inconsistencies to a third party.  This capability
could be added by combining TDR with accountability techniques, such as
accountable virtual machines."

This module implements the log half of that combination, PeerReview-style
(Haeberlen et al., SOSP'07): each log entry is folded into a hash chain,
and the machine periodically emits signed *authenticators* — commitments
to a chain prefix.  An auditor holding any authenticator can later verify
that the log it is given is a prefix-consistent extension; a machine that
rewrites history (e.g. to hide the inputs that triggered a covert-channel
transmission) produces a chain that no longer matches its own
authenticators.

Signatures are modelled as keyed hashes (HMAC-SHA256) — the simulation
equivalent of per-machine signing keys; swapping in real asymmetric
signatures changes nothing structurally.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.core.log import EventLog, LogEntry
from repro.errors import ReplayError

_GENESIS = b"TDR-ATTEST-GENESIS"


def _entry_digest(previous: bytes, entry: LogEntry) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(previous)
    hasher.update(int(entry.kind).to_bytes(1, "little"))
    hasher.update(entry.instr_count.to_bytes(8, "little"))
    hasher.update(len(entry.payload).to_bytes(4, "little"))
    hasher.update(entry.payload)
    hasher.update(entry.value.to_bytes(8, "little", signed=True))
    return hasher.digest()


@dataclass(frozen=True)
class Authenticator:
    """A signed commitment to the first ``length`` log entries."""

    length: int
    chain_head: bytes
    signature: bytes


class LogAttestor:
    """Machine-side: maintains the hash chain and signs commitments."""

    def __init__(self, signing_key: bytes) -> None:
        if not signing_key:
            raise ValueError("signing key must be non-empty")
        self._key = signing_key
        self._chain = _GENESIS
        self._length = 0

    def extend(self, entry: LogEntry) -> None:
        """Fold the next log entry into the chain."""
        self._chain = _entry_digest(self._chain, entry)
        self._length += 1

    def extend_all(self, log: EventLog) -> None:
        """Fold every not-yet-folded entry of ``log``."""
        for entry in log.entries[self._length:]:
            self.extend(entry)

    def authenticator(self) -> Authenticator:
        """Sign the current chain head."""
        signature = hmac.new(self._key, self._chain + b"|"
                             + self._length.to_bytes(8, "little"),
                             hashlib.sha256).digest()
        return Authenticator(self._length, self._chain, signature)


class LogVerifier:
    """Auditor-side: checks a log against a machine's authenticators."""

    def __init__(self, signing_key: bytes) -> None:
        self._key = signing_key

    def chain_head(self, log: EventLog, length: int | None = None) -> bytes:
        """Recompute the chain head over the first ``length`` entries."""
        if length is None:
            length = len(log.entries)
        if length > len(log.entries):
            raise ReplayError(
                f"authenticator covers {length} entries but the log has "
                f"only {len(log.entries)}")
        chain = _GENESIS
        for entry in log.entries[:length]:
            chain = _entry_digest(chain, entry)
        return chain

    def verify(self, log: EventLog, auth: Authenticator) -> bool:
        """Is ``log`` a prefix-consistent extension of ``auth``?"""
        expected_signature = hmac.new(
            self._key, auth.chain_head + b"|"
            + auth.length.to_bytes(8, "little"), hashlib.sha256).digest()
        if not hmac.compare_digest(expected_signature, auth.signature):
            return False
        try:
            recomputed = self.chain_head(log, auth.length)
        except ReplayError:
            return False
        return hmac.compare_digest(recomputed, auth.chain_head)

    def verify_available_prefix(self, log: EventLog,
                                auth: Authenticator) -> bool | None:
        """Verify a possibly-truncated log against ``auth``.

        Damage in transit can remove the very entries an authenticator
        commits to, and that must not be mistaken for tampering.  Returns

        * ``True`` — the log covers ``auth`` and the chain matches;
        * ``False`` — the chain (or the authenticator's own signature)
          does not match: the surviving entries were rewritten;
        * ``None`` — inconclusive: the log has fewer entries than the
          authenticator covers, so the commitment cannot be recomputed.
        """
        expected_signature = hmac.new(
            self._key, auth.chain_head + b"|"
            + auth.length.to_bytes(8, "little"), hashlib.sha256).digest()
        if not hmac.compare_digest(expected_signature, auth.signature):
            return False
        if auth.length > len(log.entries):
            return None
        recomputed = self.chain_head(log, auth.length)
        return hmac.compare_digest(recomputed, auth.chain_head)

    def find_divergence(self, log: EventLog,
                        auth: Authenticator) -> int | None:
        """Index of the first entry inconsistent with ``auth``, if any.

        Only meaningful when :meth:`verify` returned False for a log of
        sufficient length; a return of None means the prefix matches.
        """
        if auth.length > len(log.entries):
            return len(log.entries)
        chain = _GENESIS
        # Recompute forward; without per-entry authenticators we can only
        # say *that* the prefix diverged, so report the covered length.
        for index, entry in enumerate(log.entries[:auth.length]):
            chain = _entry_digest(chain, entry)
        if chain != auth.chain_head:
            return auth.length - 1
        return None


def attest_execution(log: EventLog, signing_key: bytes) -> Authenticator:
    """Convenience: chain and sign a complete execution log."""
    attestor = LogAttestor(signing_key)
    attestor.extend_all(log)
    return attestor.authenticator()

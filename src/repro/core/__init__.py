"""The paper's contribution: time-deterministic replay (TDR).

* :mod:`repro.core.log` — the log of nondeterministic events (§3.2, §6.5);
* :mod:`repro.core.symmetric` — symmetric read/writes with ``playMask``
  (§3.5, Fig 4);
* :mod:`repro.core.session` — recorder / TDR replayer / naive replayer
  session objects that the machine's timed core drives;
* :mod:`repro.core.tdr` — the high-level play/replay orchestration;
* :mod:`repro.core.audit` — observed-vs-replayed trace comparison (§5.3);
* :mod:`repro.core.checkpoint` — segment replay support (§3.2).
"""

from repro.core.audit import AuditReport, compare_traces
from repro.core.checkpoint import Checkpoint, snapshot_interpreter
from repro.core.log import EventKind, EventLog, LogEntry
from repro.core.session import (NaiveReplaySession, PlaySession,
                                ReplaySession, Session)
from repro.core.symmetric import SymmetricCell, symmetric_access

_TDR_NAMES = ("TdrResult", "play", "replay", "replay_naive", "round_trip")
_RESILIENCE_NAMES = ("AuditClassification", "AuditOutcome",
                     "DegradationLevel", "audit_resilient")


def __getattr__(name: str):
    # repro.core.tdr imports repro.machine, which imports repro.core.log;
    # re-exporting tdr lazily breaks that import cycle.
    if name in _TDR_NAMES:
        from repro.core import tdr

        return getattr(tdr, name)
    if name in _RESILIENCE_NAMES:
        from repro.core import resilience

        return getattr(resilience, name)
    raise AttributeError(f"module 'repro.core' has no attribute '{name}'")

__all__ = [
    "AuditClassification",
    "AuditOutcome",
    "AuditReport",
    "DegradationLevel",
    "audit_resilient",
    "Checkpoint",
    "EventKind",
    "EventLog",
    "LogEntry",
    "NaiveReplaySession",
    "PlaySession",
    "ReplaySession",
    "Session",
    "SymmetricCell",
    "TdrResult",
    "compare_traces",
    "play",
    "replay",
    "replay_naive",
    "round_trip",
    "snapshot_interpreter",
    "symmetric_access",
]

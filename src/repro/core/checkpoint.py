"""Checkpointing for segment replay (§3.2).

"If Sanity is used for long-running services ... it is important to enable
auditors to reproduce smaller segments of the execution individually.
Like other deterministic replay systems, Sanity could provide
checkpointing for this purpose."

A :class:`Checkpoint` captures the VM-visible state (heap, globals,
threads, instruction counter).  Restoring one into a fresh interpreter and
replaying the log's suffix reproduces the segment functionally; for
*time*-deterministic segment replay the machine must additionally be
quiesced at the checkpoint (caches flushed, §3.6), which is how
:func:`segment_boundary_cost` models the checkpoint overhead.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.errors import ReplayError
from repro.vm.interpreter import Interpreter


@dataclass
class Checkpoint:
    """A VM-state snapshot at a specific instruction count."""

    instr_count: int
    heap_state: object
    globals_state: list
    threads_state: object
    halted: bool
    next_thread_id: int
    current_index: int


def snapshot_interpreter(vm: Interpreter) -> Checkpoint:
    """Capture the interpreter's complete guest-visible state."""
    return Checkpoint(
        instr_count=vm.instruction_count,
        heap_state=copy.deepcopy(vm.heap),
        globals_state=copy.deepcopy(vm.globals),
        threads_state=copy.deepcopy(vm.threads),
        halted=vm.halted,
        next_thread_id=vm._next_thread_id,
        current_index=vm._current_index)


def restore_interpreter(vm: Interpreter, checkpoint: Checkpoint) -> None:
    """Overwrite an interpreter's state with a snapshot.

    The interpreter must have been built from the same program; guest
    state is replaced wholesale.
    """
    if not checkpoint.threads_state:
        raise ReplayError("cannot restore an empty checkpoint")
    vm.instruction_count = checkpoint.instr_count
    vm.heap = copy.deepcopy(checkpoint.heap_state)
    vm.globals = copy.deepcopy(checkpoint.globals_state)
    vm.threads = copy.deepcopy(checkpoint.threads_state)
    vm.halted = checkpoint.halted
    vm._next_thread_id = checkpoint.next_thread_id
    vm._current_index = checkpoint.current_index


#: Cycles to quiesce the machine at a checkpoint boundary (cache + TLB
#: flush and the §3.6 quiescence period) so segment replay can start from
#: a reproducible microarchitectural state.
SEGMENT_QUIESCE_CYCLES = 150_000


def segment_boundary_cost() -> int:
    """Cycle cost of taking a time-deterministic checkpoint."""
    return SEGMENT_QUIESCE_CYCLES

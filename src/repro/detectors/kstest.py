"""The Kolmogorov-Smirnov test (Peng et al., S&P'06; §5.2).

"The KS-test calculates the distance between the empirical distributions
of the test sample and training sample (from legitimate traffic).  If the
distance is above a pre-determined threshold, the test distribution is
considered to contain a covert timing channel."

The training sample is the pooled IPDs of all legitimate traces; the
score is the two-sample KS statistic, used directly as the anomaly score.
"""

from __future__ import annotations

from repro.analysis.stats import ks_distance
from repro.detectors.base import Detector


class KsDetector(Detector):
    """Two-sample Kolmogorov-Smirnov distance against pooled legit IPDs."""

    name = "ks"

    def __init__(self, max_training_samples: int = 20_000) -> None:
        super().__init__()
        self.max_training_samples = max_training_samples
        self._training: list[float] = []

    def _fit(self, training_traces: list[list[float]]) -> None:
        pooled: list[float] = []
        for trace in training_traces:
            pooled.extend(trace)
        # Deterministic decimation keeps the per-score cost bounded.
        if len(pooled) > self.max_training_samples:
            step = len(pooled) / self.max_training_samples
            pooled = [pooled[int(i * step)]
                      for i in range(self.max_training_samples)]
        self._training = sorted(pooled)

    def _score(self, ipds_ms: list[float]) -> float:
        return ks_distance(ipds_ms, self._training)

"""The shape test (Cabuk et al., CCS'04; §5.2).

"The shape test checks only flow-level statistics; it assumes that the
covert channel traffic could be differentiated from legitimate traffic
using only first-order statistics, such as the mean and variance of IPDs."

Implementation: fit the per-trace (mean, stdev) distribution of legitimate
traffic, then score a test trace by the normalized distance of its
(mean, stdev) from the legitimate centroid.  Channels that preserve
first-order statistics (TRCTC, MBCTC, Needle) sail through this test,
reproducing Fig 8's low shape-test AUCs.
"""

from __future__ import annotations

from repro.analysis.stats import mean, stdev
from repro.detectors.base import Detector


class ShapeDetector(Detector):
    """First-order (mean/variance) IPD statistics test."""

    name = "shape"

    def __init__(self) -> None:
        super().__init__()
        self._mean_center = 0.0
        self._mean_scale = 1.0
        self._std_center = 0.0
        self._std_scale = 1.0

    def _fit(self, training_traces: list[list[float]]) -> None:
        trace_means = [mean(t) for t in training_traces if t]
        trace_stds = [stdev(t) for t in training_traces if t]
        self._mean_center = mean(trace_means)
        self._std_center = mean(trace_stds)
        # Scales: spread of the statistic across legitimate traces; the
        # epsilon floor avoids division blow-ups on tiny training sets.
        self._mean_scale = max(stdev(trace_means), 1e-3)
        self._std_scale = max(stdev(trace_stds), 1e-3)

    def _score(self, ipds_ms: list[float]) -> float:
        mean_deviation = abs(mean(ipds_ms) - self._mean_center) / \
            self._mean_scale
        std_deviation = abs(stdev(ipds_ms) - self._std_center) / \
            self._std_scale
        return max(mean_deviation, std_deviation)

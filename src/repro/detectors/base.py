"""Common detector interface."""

from __future__ import annotations

import abc

from repro.errors import DetectorError


class Detector(abc.ABC):
    """A trainable covert-channel detector over IPD traces.

    ``fit`` learns a model of legitimate traffic; ``score`` maps one test
    trace's IPDs (milliseconds) to an anomaly score where larger means
    "more likely covert".  Thresholding is left to the ROC machinery —
    "we vary the discrimination threshold of each detection technique"
    (§6.7).
    """

    #: Human-readable name used in reports and bench output.
    name: str = "detector"

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, training_traces: list[list[float]]) -> None:
        """Learn legitimate-traffic statistics."""
        if not training_traces or not any(training_traces):
            raise DetectorError(f"{self.name}: empty training set")
        self._fit(training_traces)
        self._fitted = True

    def score(self, ipds_ms: list[float]) -> float:
        """Anomaly score of one trace (higher = more covert)."""
        if not self._fitted:
            raise DetectorError(f"{self.name}: fit() before score()")
        if len(ipds_ms) < 2:
            raise DetectorError(
                f"{self.name}: need at least 2 IPDs, got {len(ipds_ms)}")
        return self._score(ipds_ms)

    @abc.abstractmethod
    def _fit(self, training_traces: list[list[float]]) -> None:
        """Detector-specific training."""

    @abc.abstractmethod
    def _score(self, ipds_ms: list[float]) -> float:
        """Detector-specific scoring."""

"""The mirror-VM detector (Liu et al. [34]; paper §8 "Related Work").

"We know of only one other work that uses a VM-based detector, but [34]
simply replicates incoming traffic to two VMs on the same machine and
compares the timing of the outputs.  Moreover, without determinism the
two VMs would soon diverge and cause a large number of false positives."

Model: the mirror VM receives the same inputs *live* (same client
workload), on an ordinary — non-time-deterministic — machine.  Its output
timing therefore differs from the monitored machine's by the full
environmental noise of a live run, not by TDR's carefully-minimized
replay residual.  The detector's discrimination statistic is the same
max-IPD-deviation as the TDR detector's; the comparison quantifies why
determinism matters: the mirror's noise floor is an order of magnitude
above TDR's, so channels must be correspondingly louder to be seen.
"""

from __future__ import annotations

from typing import Callable

from repro.core.audit import compare_traces
from repro.errors import DetectorError
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.machine.noise import scenario_config
from repro.machine.workload import Workload


class MirrorDetector:
    """Compare a monitored execution against a live mirror VM."""

    name = "mirror"

    def __init__(self, mirror_config: MachineConfig | None = None,
                 mirror_seed: int = 2_000_003) -> None:
        # [34]'s mirror is an ordinary VM: the paper's "clean" machine
        # (single-user mode, no TDR design) is the generous default.
        self.mirror_config = (mirror_config if mirror_config is not None
                              else scenario_config("clean"))
        self.mirror_seed = mirror_seed

    def score_execution(self, program, observed_result: ExecutionResult,
                        workload_factory: Callable[[], Workload]) -> float:
        """Max IPD deviation between the observed trace and the mirror.

        ``workload_factory`` must rebuild the *same* client behaviour
        (same seed) — the mirror receives replicated inputs.
        """
        from repro.core.tdr import play

        mirror = play(program, self.mirror_config,
                      workload=workload_factory(), seed=self.mirror_seed)
        if len(mirror.tx) != len(observed_result.tx):
            # Functional divergence between the replicas: [34]'s failure
            # mode.  Report an un-scoreable (maximal) deviation.
            return float("inf")
        report = compare_traces(observed_result, mirror)
        return report.max_abs_ipd_diff_ms

    def noise_floor(self, program, workload_factory, config=None,
                    probes: int = 3) -> float:
        """The deviation a *clean* machine shows against the mirror —
        anything below this is undetectable without false positives."""
        from repro.core.tdr import play

        if probes < 1:
            raise DetectorError("need at least one probe")
        config = config or MachineConfig()
        floor = 0.0
        for probe in range(probes):
            clean = play(program, config, workload=workload_factory(),
                         seed=31_000 + probe)
            floor = max(floor, self.score_execution(program, clean,
                                                    workload_factory))
        return floor

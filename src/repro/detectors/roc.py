"""ROC curves and AUC for detector evaluation (§6.7).

"For each setting, we obtain a true-positive and a false-positive rate,
and we plot these in a graph to obtain each detector's receiver operating
characteristic (ROC) curve. ... We also measure the area under the curve
(AUC) of each ROC curve."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import auc_mann_whitney, roc_points
from repro.detectors.base import Detector


@dataclass
class RocCurve:
    """One detector's ROC curve on one channel."""

    detector_name: str
    points: list[tuple[float, float]] = field(default_factory=list)
    auc: float = 0.0
    positive_scores: list[float] = field(default_factory=list)
    negative_scores: list[float] = field(default_factory=list)

    def tpr_at_fpr(self, max_fpr: float) -> float:
        """Best true-positive rate achievable at or below ``max_fpr``."""
        best = 0.0
        for fpr, tpr in self.points:
            if fpr <= max_fpr:
                best = max(best, tpr)
        return best

    def format_row(self) -> str:
        """One bench-output row, like the paper's legend entries."""
        return f"{self.detector_name:<12s} AUC={self.auc:.3f}"


def roc_from_scores(detector_name: str, positive_scores: list[float],
                    negative_scores: list[float]) -> RocCurve:
    """Build a ROC curve from raw anomaly scores."""
    return RocCurve(
        detector_name=detector_name,
        points=roc_points(positive_scores, negative_scores),
        auc=auc_mann_whitney(positive_scores, negative_scores),
        positive_scores=list(positive_scores),
        negative_scores=list(negative_scores))


def evaluate_detector(detector: Detector,
                      training_traces: list[list[float]],
                      covert_traces: list[list[float]],
                      legit_traces: list[list[float]]) -> RocCurve:
    """Train on legitimate traffic, score covert + held-out legit traces."""
    detector.fit(training_traces)
    positives = [detector.score(t) for t in covert_traces]
    negatives = [detector.score(t) for t in legit_traces]
    return roc_from_scores(detector.name, positives, negatives)

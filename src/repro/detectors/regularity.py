"""The regularity test (Cabuk et al., CCS'04; §5.2).

"The RT-test is based on the observation that the variance of IPDs in
legitimate traffic varies over time, while a covert channel manifests a
relatively constant variance due to its constant encoding scheme.
RT-test groups the traffic into sets of w packets, and compares the
standard deviation of pairwise differences between each set."

The classic statistic::

    regularity = STDEV( |sigma_i - sigma_j| / sigma_i ,  for all i < j )

is *small* for covert traffic (window variances stay put) and *large* for
bursty legitimate traffic.  To fit the common higher-is-covert score
orientation, the detector calibrates the legitimate regularity range
during fit and scores by how far *below* the legitimate median a test
trace's regularity falls.
"""

from __future__ import annotations

from repro.analysis.stats import mean, percentile, stdev
from repro.detectors.base import Detector


def regularity_statistic(ipds_ms: list[float], window: int) -> float:
    """Cabuk's regularity statistic over windows of ``window`` IPDs."""
    sigmas = []
    for start in range(0, len(ipds_ms) - window + 1, window):
        sigma = stdev(ipds_ms[start:start + window])
        if sigma > 1e-9:
            sigmas.append(sigma)
    if len(sigmas) < 2:
        # Degenerate traces (constant IPDs) are maximally regular.
        return 0.0
    ratios = []
    for i in range(len(sigmas)):
        for j in range(i + 1, len(sigmas)):
            ratios.append(abs(sigmas[i] - sigmas[j]) / sigmas[i])
    return stdev(ratios)


class RegularityDetector(Detector):
    """Window-variance regularity test."""

    name = "regularity"

    def __init__(self, window: int = 10) -> None:
        super().__init__()
        if window < 2:
            raise ValueError("regularity window must be >= 2")
        self.window = window
        self._legit_median = 0.0
        self._legit_scale = 1.0

    def _fit(self, training_traces: list[list[float]]) -> None:
        stats = [regularity_statistic(t, self.window)
                 for t in training_traces if len(t) >= self.window]
        if not stats:
            stats = [regularity_statistic(t, max(2, len(t) // 2))
                     for t in training_traces if len(t) >= 4]
        if not stats:
            stats = [0.0]
        self._legit_median = percentile(stats, 50.0)
        spread = percentile(stats, 90.0) - percentile(stats, 10.0)
        self._legit_scale = max(spread, 1e-3)

    def _score(self, ipds_ms: list[float]) -> float:
        statistic = regularity_statistic(ipds_ms, self.window)
        # Covert traffic is *more* regular: statistic below the
        # legitimate median scores positive.
        return (self._legit_median - statistic) / self._legit_scale

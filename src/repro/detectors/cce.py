"""Corrected conditional entropy (Gianvecchio & Wang, CCS'07; §5.2).

"The CCE metric extends the notion of the regularity test.  It uses a
high-order entropy rate to recognize the repeated pattern that is formed
by the covert timing channel."

Pipeline (following the original paper):

1. quantize IPDs into Q equiprobable bins learned from legitimate traffic;
2. estimate the conditional entropy CE(m) = H(X_m | X_1..X_{m-1}) from
   pattern counts for increasing pattern length m;
3. correct for the finite sample: CCE(m) = CE(m) + perc(m) * H(X_1), where
   perc(m) is the fraction of length-m patterns seen exactly once;
4. the trace's entropy estimate is min over m of CCE(m).

Covert channels produce repeated patterns → low minimum CCE.  The score is
calibrated against legitimate traffic so higher = more covert.
"""

from __future__ import annotations

from repro.analysis.stats import (entropy_bits, equiprobable_bin_edges,
                                  percentile, quantize)
from repro.detectors.base import Detector


def corrected_conditional_entropy(symbols: list[int],
                                  max_pattern: int = 6) -> float:
    """min_m CCE(m) of a symbol sequence."""
    if not symbols:
        return 0.0
    first_order = entropy_bits(symbols)
    best = first_order
    previous_block_entropy = 0.0
    for m in range(2, max_pattern + 1):
        if len(symbols) < m + 1:
            break
        patterns: dict[tuple, int] = {}
        for i in range(len(symbols) - m + 1):
            key = tuple(symbols[i:i + m])
            patterns[key] = patterns.get(key, 0) + 1
        total = len(symbols) - m + 1
        block_entropy = -sum(
            (c / total) * _log2(c / total) for c in patterns.values())
        conditional = block_entropy - previous_block_entropy
        unique_fraction = sum(1 for c in patterns.values() if c == 1) / total
        cce = conditional + unique_fraction * first_order
        best = min(best, cce)
        previous_block_entropy = block_entropy
        if unique_fraction >= 1.0:
            break  # all patterns unique: deeper orders are pure correction
    return best


def _log2(x: float) -> float:
    import math

    return math.log2(x)


class CceDetector(Detector):
    """Corrected-conditional-entropy detector."""

    name = "cce"

    def __init__(self, bins: int = 5, max_pattern: int = 6) -> None:
        super().__init__()
        self.bins = bins
        self.max_pattern = max_pattern
        self._edges: list[float] = []
        self._legit_median = 0.0
        self._legit_scale = 1.0

    def _fit(self, training_traces: list[list[float]]) -> None:
        pooled: list[float] = []
        for trace in training_traces:
            pooled.extend(trace)
        self._edges = equiprobable_bin_edges(pooled, self.bins)
        legit_cces = []
        for trace in training_traces:
            if len(trace) >= 4:
                symbols = quantize(trace, self._edges)
                legit_cces.append(corrected_conditional_entropy(
                    symbols, self.max_pattern))
        if not legit_cces:
            legit_cces = [0.0]
        self._legit_median = percentile(legit_cces, 50.0)
        spread = percentile(legit_cces, 90.0) - percentile(legit_cces, 10.0)
        self._legit_scale = max(spread, 1e-3)

    def _score(self, ipds_ms: list[float]) -> float:
        symbols = quantize(ipds_ms, self._edges)
        cce = corrected_conditional_entropy(symbols, self.max_pattern)
        # Two-sided: a covert channel is anomalous in *either* direction.
        # Slot channels (IPCTC) repeat patterns → entropy far below the
        # legitimate range; i.i.d. mimicry channels (TRCTC, MBCTC) destroy
        # the temporal correlation legitimate traffic has → entropy above
        # it ("as there is no correlation between consecutive IPDs, MBCTC
        # is highly regular" — regular in the conditional-structure sense).
        return abs(cce - self._legit_median) / self._legit_scale

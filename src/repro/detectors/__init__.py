"""Covert-timing-channel detectors (§5.2-§5.3, §6.6-§6.8).

Four statistical baselines and the paper's TDR-based detector:

=================  ==========================================
Detector           Module / reference
=================  ==========================================
Shape test         :mod:`repro.detectors.shape` (Cabuk et al.)
KS test            :mod:`repro.detectors.kstest` (Peng et al.)
Regularity test    :mod:`repro.detectors.regularity` (Cabuk et al.)
CCE                :mod:`repro.detectors.cce` (Gianvecchio & Wang)
Sanity (TDR)       :mod:`repro.detectors.tdr_detector`
=================  ==========================================

All statistical detectors share the :class:`~repro.detectors.base.Detector`
interface: ``fit`` on legitimate traffic, then ``score`` test traces
(higher = more covert).  ROC/AUC machinery lives in
:mod:`repro.detectors.roc`.
"""

from repro.detectors.base import Detector
from repro.detectors.cce import CceDetector
from repro.detectors.kstest import KsDetector
from repro.detectors.regularity import RegularityDetector
from repro.detectors.roc import RocCurve, evaluate_detector, roc_from_scores
from repro.detectors.shape import ShapeDetector
from repro.detectors.tdr_detector import TdrDetector

__all__ = [
    "CceDetector",
    "Detector",
    "KsDetector",
    "RegularityDetector",
    "RocCurve",
    "ShapeDetector",
    "TdrDetector",
    "evaluate_detector",
    "roc_from_scores",
]


def all_statistical_detectors() -> list[Detector]:
    """Fresh instances of the four statistical baselines."""
    return [ShapeDetector(), KsDetector(), RegularityDetector(),
            CceDetector()]

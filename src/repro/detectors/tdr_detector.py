"""The Sanity-based (TDR) detector (§5.3, §6.7).

Unlike the statistical tests, this detector does not look for patterns in
the observed traffic.  It replays the machine's log with TDR on a clean
reference machine of the same type and compares per-packet timing:

"For the Sanity-based detector, [the discrimination threshold] is the
minimum difference between an observed IPD and the corresponding IPD
during replay that will cause the detector to report the presence of a
channel."

The detector therefore needs (program, log, machine type) in addition to
the observed trace; it does not fit on training traffic at all — which is
exactly its advantage: "Existing statistic-based detection techniques rely
on the availability of a sufficient amount of legitimate traffic ..."
"""

from __future__ import annotations

from repro.core.audit import AuditReport, compare_traces
from repro.errors import DetectorError


class TdrDetector:
    """Per-packet play-vs-replay IPD comparison.

    This class intentionally does not subclass
    :class:`~repro.detectors.base.Detector`: it consumes executions and
    logs, not bare IPD lists, and it needs no training.
    """

    name = "sanity"

    def __init__(self, replay_seed: int = 1_000_003) -> None:
        self.replay_seed = replay_seed

    def score_execution(self, program, observed_result, config) -> float:
        """Replay ``observed_result``'s log and score the deviation.

        Returns the maximum absolute IPD deviation in ms (the detector's
        discrimination statistic).
        """
        from repro.core.tdr import replay

        if observed_result.log is None:
            raise DetectorError("observed execution carries no log; "
                                "was it recorded in play mode?")
        reference = replay(program, observed_result.log, config,
                           seed=self.replay_seed)
        report = compare_traces(observed_result, reference)
        return self.score_report(report)

    def score_report(self, report: AuditReport) -> float:
        """Score a pre-computed audit report."""
        return report.deviation_score()

    @staticmethod
    def decide(report: AuditReport, threshold_ms: float) -> bool:
        """Flag a channel when any IPD deviates more than ``threshold_ms``."""
        return report.deviation_score() > threshold_ms

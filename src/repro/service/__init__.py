"""repro.service — a deterministic continuous-audit verifier service.

The §3.2 deployment story made executable: tenants (prover machines)
stream hash-chained log segments to a verifier daemon that admits,
queues, schedules, and escalates incremental replay audits — all under a
seeded discrete-event clock, so an entire multi-tenant service run is a
pure function of its seed.

Modules
-------
``simclock``    virtual-time event queue + worker-pool model
``session``     prover sessions: play, chain, sign, segment, ship
``ingest``      admission: CRC + attestation-chain checks, gap discipline
``queue``       priority job queue with budgets and backpressure
``scheduler``   escalation state machine + cache-backed fleet dispatch
``verdicts``    per-tenant ledgers, metrics, the run report
``daemon``      the epoch loop tying it all together (one node)
``ring``        consistent-hash tenant placement for the sharded fleet
``failure``     heartbeat failure detection over virtual time
``fleet``       N-node sharded deployment: chaos, rebalance, degradation
"""

from repro.service.daemon import (AuditService, default_tenants,
                                  persist_service_report, play_and_ship)
from repro.service.failure import FailureDetector, NodeHealth
from repro.service.fleet import (FleetNode, FleetReport, FleetService,
                                 FleetTopology, RebalanceEvent,
                                 persist_fleet_report)
from repro.service.ingest import (AdmissionRecord, AdmissionStatus,
                                  EpochAccumulator, IngestGate)
from repro.service.queue import (PRIORITY_ESCALATED, PRIORITY_FULL,
                                 PRIORITY_SPOT, AuditJob, AuditQueue)
from repro.service.ring import HashRing
from repro.service.scheduler import (AuditScheduler, EscalationPolicy,
                                     ReplayTask, TenantState, TenantStatus,
                                     execute_replay_task, resolve_replays)
from repro.service.session import (EpochShipment, ProverSession,
                                   SegmentShipment, TenantSpec,
                                   WireObservation)
from repro.service.simclock import (ServiceError, SimClock, SimEvent,
                                    WorkerPool)
from repro.service.verdicts import (AuditEvent, ServiceReport, TenantLedger,
                                    UnauditedRecord, VerdictSink)

__all__ = [
    "AdmissionRecord",
    "AdmissionStatus",
    "AuditEvent",
    "AuditJob",
    "AuditQueue",
    "AuditScheduler",
    "AuditService",
    "EpochAccumulator",
    "EpochShipment",
    "EscalationPolicy",
    "FailureDetector",
    "FleetNode",
    "FleetReport",
    "FleetService",
    "FleetTopology",
    "HashRing",
    "IngestGate",
    "NodeHealth",
    "PRIORITY_ESCALATED",
    "PRIORITY_FULL",
    "PRIORITY_SPOT",
    "ProverSession",
    "RebalanceEvent",
    "ReplayTask",
    "SegmentShipment",
    "ServiceError",
    "ServiceReport",
    "SimClock",
    "SimEvent",
    "TenantLedger",
    "TenantSpec",
    "TenantState",
    "TenantStatus",
    "UnauditedRecord",
    "VerdictSink",
    "WireObservation",
    "WorkerPool",
    "default_tenants",
    "execute_replay_task",
    "persist_fleet_report",
    "persist_service_report",
    "play_and_ship",
    "resolve_replays",
]

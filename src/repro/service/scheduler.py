"""Audit scheduling and the escalation state machine.

The scheduler turns admitted segments into replay work and replay
results into tenant state transitions:

::

    NORMAL --spot-check anomaly--> SUSPECT --escalated full-prefix-->
        consistent        -> NORMAL   (strike cleared)
        timing deviation  -> FLAGGED_COVERT
        payload mismatch  -> FLAGGED_DIVERGENT
    any tamper signal (chain mismatch at ingest) --> escalated replay
        --> FLAGGED_TAMPER

Two cost regimes implement the "cheap first" rule.  A *spot check* runs
when the epoch's first segment lands: it replays only the entries
admitted so far under a hard instruction budget (the VM stops at the
budget instead of raising), then compares the matched transmission
prefix.  A *full audit* runs at the epoch's final segment on a cadence
(every ``full_audit_every``-th epoch), replaying the whole accumulated
log — this is what catches shape-mimicking channels a short prefix might
miss.  Escalations replay the full prefix immediately and preempt
everything else in the queue.

Determinism: all real replay execution happens in submission-order
:func:`~repro.analysis.parallel.run_fleet` batches, while *time* (start,
completion, latency, utilization) comes from the virtual
:class:`~repro.service.simclock.WorkerPool` plus a cost model priced in
replayed instructions.  Worker count and ``--jobs`` therefore change
wall-clock only, never a verdict, a latency table, or a cache sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.analysis.parallel import _compiled, run_fleet
from repro.core.audit import AuditReport, compare_trace_prefix
from repro.core.log import EventLog
from repro.core.replay_cache import ReplayCache
from repro.core.resilience import AuditClassification
from repro.core.segments import replay_salvaged_prefix
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service.ingest import AdmissionRecord, AdmissionStatus, IngestGate
from repro.service.queue import (PRIORITY_ESCALATED, PRIORITY_FULL,
                                 PRIORITY_SPOT, AuditJob, AuditQueue)
from repro.service.session import TenantSpec, WireObservation
from repro.service.simclock import ServiceError, WorkerPool
from repro.service.verdicts import AuditEvent, VerdictSink


class TenantStatus(str, enum.Enum):
    """Where a tenant sits in the escalation state machine."""

    NORMAL = "normal"
    SUSPECT = "suspect"
    FLAGGED_COVERT = "flagged-covert"
    FLAGGED_TAMPER = "flagged-tamper"
    FLAGGED_DIVERGENT = "flagged-divergent"

    @property
    def flagged(self) -> bool:
        return self in (TenantStatus.FLAGGED_COVERT,
                        TenantStatus.FLAGGED_TAMPER,
                        TenantStatus.FLAGGED_DIVERGENT)


@dataclass(frozen=True)
class EscalationPolicy:
    """Knobs of the escalation state machine and the audit cost model."""

    #: Full-prefix audit cadence: epoch ``e`` gets a full audit when
    #: ``(e + 1) % full_audit_every == 0`` (and a spot check otherwise).
    full_audit_every: int = 2
    #: Instruction budget of a spot check — the VM stops here, so the
    #: check's cost is capped no matter how big the epoch is.
    spot_budget_instructions: int = 2_000_000
    full_budget_instructions: int = 200_000_000
    #: §6.2 replay-accuracy bound used for the timing verdict.
    rel_threshold: float = 0.0185
    abs_threshold_ms: float = 0.05
    #: Virtual audit throughput pricing a job's service time
    #: (``service_ms = instructions / virtual_instr_per_ms``).
    virtual_instr_per_ms: float = 2_000.0
    #: Virtual cost of serving a verdict straight from the replay cache.
    cache_hit_cost_ms: float = 2.0
    #: Audit-SLO deadlines per job class (missed ones are reported,
    #: never enforced — a late verdict is still a verdict).
    spot_deadline_ms: float = 2_000.0
    full_deadline_ms: float = 6_000.0
    escalated_deadline_ms: float = 1_500.0

    def __post_init__(self) -> None:
        if self.full_audit_every < 1:
            raise ServiceError("full_audit_every must be >= 1, got "
                               f"{self.full_audit_every}")
        if self.virtual_instr_per_ms <= 0:
            raise ServiceError("virtual_instr_per_ms must be positive")

    def wants_full_audit(self, epoch: int) -> bool:
        return (epoch + 1) % self.full_audit_every == 0


@dataclass
class TenantState:
    """Mutable per-tenant scheduler state."""

    spec: TenantSpec
    status: TenantStatus = TenantStatus.NORMAL
    anomalies: int = 0
    escalations: int = 0
    cleared: int = 0              #: suspicions retired by a clean escalation
    epochs_audited: set = field(default_factory=set)


class ReplayTask(NamedTuple):
    """Picklable description of one verifier replay (fleet worker input)."""

    program: str
    log_bytes: bytes
    config: MachineConfig
    seed: int
    max_instructions: int | None


class ReplayTaskResult(NamedTuple):
    result: ExecutionResult
    diverged: str | None          #: divergence message, picklable


def execute_replay_task(task: ReplayTask) -> ReplayTaskResult:
    """Fleet worker: tolerant prefix replay of a (possibly partial) log.

    Top-level by design so worker processes can import it; the divergence
    exception is flattened to its message because tracebacks and flight
    records need not cross the pool for a scheduling decision.
    """
    program = _compiled(task.program)
    log = EventLog.from_bytes(task.log_bytes)
    result, diverged = replay_salvaged_prefix(
        program, log, task.config, seed=task.seed,
        max_instructions=task.max_instructions)
    return ReplayTaskResult(result,
                            None if diverged is None else str(diverged))


def resolve_replays(work: "list[tuple]", jobs: int | None = None
                    ) -> "list[tuple]":
    """Resolve a dispatch round of jobs into replay outcomes.

    ``work`` is ``[(scheduler, job, gate), ...]`` in submission order —
    one scheduler repeated for a single-node round, or several when a
    fleet batches a round across nodes.  Each job is prepared against
    its own scheduler's cache (so per-node hit/miss attribution holds),
    identical replays are deduped across the whole round, the unique
    misses run in one submission-ordered fleet batch, and duplicates
    are served back through the cache.  Cross-scheduler dedupe assumes
    the schedulers share a cache tier (per-node views of one
    :class:`~repro.core.replay_cache.ReplayCache`), which is how the
    fleet wires them.

    Returns ``[(task, outcome, cache_hit), ...]`` aligned with ``work``.
    """
    prepared = [sched._prepare(job, gate) for sched, job, gate in work]
    unique: dict[tuple, list[int]] = {}
    for i, (task, outcome, _) in enumerate(prepared):
        if task is not None and outcome is None:
            key = (task.program, task.log_bytes, task.seed,
                   task.max_instructions)
            unique.setdefault(key, []).append(i)
    groups = list(unique.values())
    fleet_out = run_fleet([prepared[idxs[0]][0] for idxs in groups],
                          jobs=jobs, worker=execute_replay_task)
    for idxs, out in zip(groups, fleet_out):
        task = prepared[idxs[0]][0]
        log = EventLog.from_bytes(task.log_bytes)
        work[idxs[0]][0].cache.store_value(
            _compiled(task.program), log, out,
            config=task.config, seed=task.seed,
            max_instructions=task.max_instructions)
        prepared[idxs[0]] = (task, out, False)
        for i in idxs[1:]:
            prepared[i] = (task, work[i][0].cache.fetch_value(
                _compiled(task.program), log, config=task.config,
                seed=task.seed,
                max_instructions=task.max_instructions), True)
    return prepared


class AuditScheduler:
    """Owns the queue, the worker-pool model, the cache, and tenant state."""

    REPLAY_SEED = 1

    def __init__(self, tenants: dict[str, TenantSpec],
                 config: MachineConfig | None = None,
                 policy: EscalationPolicy | None = None,
                 queue: AuditQueue | None = None,
                 pool: WorkerPool | None = None,
                 cache: ReplayCache | None = None,
                 sink: VerdictSink | None = None,
                 registry: MetricsRegistry | None = None,
                 states: dict | None = None,
                 node_id: str = "") -> None:
        self.config = config or MachineConfig()
        self.policy = policy or EscalationPolicy()
        self.registry = registry if registry is not None else get_registry()
        # "is None" rather than "or": an *empty* queue or cache view is
        # falsy (len == 0), and replacing a caller's instance with a
        # fresh default would silently drop its sizing — and break the
        # fleet's shared cache tier.
        self.queue = (queue if queue is not None
                      else AuditQueue(registry=self.registry))
        self.pool = pool if pool is not None else WorkerPool(num_workers=2)
        self.cache = (cache if cache is not None
                      else ReplayCache(maxsize=32, registry=self.registry))
        self.sink = (sink if sink is not None
                     else VerdictSink(registry=self.registry))
        #: Per-tenant state machines.  A fleet passes one shared ``states``
        #: mapping to every node-hosted scheduler so a tenant's escalation
        #: history survives rebalancing to a new owner.
        if states is not None:
            self.tenants = states
        else:
            self.tenants = {tid: TenantState(spec=spec)
                            for tid, spec in tenants.items()}
        #: Verifier-observed wire traces, keyed ``(tenant_id, epoch)``.
        #: Fleet-shared for the same reason as ``states``.
        self.wires: dict[tuple[str, int], WireObservation] = {}
        #: Which fleet node hosts this scheduler ("" = standalone daemon).
        self.node_id = node_id
        #: Virtual service-time multiplier (a slow-node fault raises it).
        self.time_factor = 1.0
        #: Degradation ladder: when True, scheduled full audits are
        #: demoted to spot checks (escalations keep full budgets).
        self.spot_only = False

    def state(self, tenant_id: str) -> TenantState:
        state = self.tenants.get(tenant_id)
        if state is None:
            raise ServiceError(f"unknown tenant '{tenant_id}'")
        return state

    def observe_wire(self, tenant_id: str, epoch: int,
                     wire: WireObservation) -> None:
        """Record what the verifier's own vantage saw for this epoch."""
        self.wires[(tenant_id, epoch)] = wire

    # -- job generation ----------------------------------------------------

    def note_admission(self, record: AdmissionRecord,
                       gate: IngestGate) -> list[AuditJob]:
        """React to one admitted segment; returns the jobs it spawned."""
        ship = record.shipment
        state = self.state(ship.tenant_id)
        policy = self.policy
        jobs: list[AuditJob] = []

        if record.status == AdmissionStatus.TAMPER:
            # Proof of history rewriting: escalate immediately, whatever
            # else this epoch was going to get.
            state.anomalies += 1
            jobs.append(self._job(ship.tenant_id, ship.epoch, "escalated",
                                  PRIORITY_ESCALATED, ship.arrival_ms,
                                  policy.escalated_deadline_ms,
                                  policy.full_budget_instructions,
                                  record.accumulated_entries,
                                  cause="tamper-signal"))
        elif record.status == AdmissionStatus.ADMITTED:
            if ship.seq == 0 and ship.total_segments > 1 \
                    and not policy.wants_full_audit(ship.epoch):
                # Streaming spot check on the epoch's first slice.
                jobs.append(self._job(ship.tenant_id, ship.epoch, "spot",
                                      PRIORITY_SPOT, ship.arrival_ms,
                                      policy.spot_deadline_ms,
                                      policy.spot_budget_instructions,
                                      record.accumulated_entries,
                                      cause=f"segment:{ship.seq}"))
            if ship.seq == ship.total_segments - 1:
                kind = ("full" if policy.wants_full_audit(ship.epoch)
                        and not self.spot_only else "spot")
                jobs.append(self._job(
                    ship.tenant_id, ship.epoch, kind,
                    PRIORITY_FULL if kind == "full" else PRIORITY_SPOT,
                    ship.arrival_ms,
                    policy.full_deadline_ms if kind == "full"
                    else policy.spot_deadline_ms,
                    policy.full_budget_instructions if kind == "full"
                    else policy.spot_budget_instructions,
                    record.accumulated_entries, cause="epoch-end"))
        elif record.status == AdmissionStatus.DEGRADED \
                and ship.seq == ship.total_segments - 1:
            # The epoch closed with damage: audit whatever prefix stands.
            jobs.append(self._epoch_close_job(record, ship))
        # DEGRADED mid-epoch and QUARANTINED segments generate no work:
        # the epoch-final job audits the surviving prefix.
        if record.status == AdmissionStatus.QUARANTINED \
                and ship.seq == ship.total_segments - 1 \
                and not gate.accumulator(ship.tenant_id, ship.epoch).tampered:
            jobs.append(self._epoch_close_job(record, ship))

        return [job for job in jobs if self.queue.push(job)]

    def _epoch_close_job(self, record: AdmissionRecord, ship) -> AuditJob:
        """The full audit of a damaged epoch's surviving prefix.

        Under spot-only degradation (fleet capacity loss) it is demoted
        to a budgeted spot check — anomalies still escalate, so nothing
        is silently trusted, but the fleet spends spot-sized budgets.
        """
        policy = self.policy
        if self.spot_only:
            return self._job(ship.tenant_id, ship.epoch, "spot",
                             PRIORITY_SPOT, ship.arrival_ms,
                             policy.spot_deadline_ms,
                             policy.spot_budget_instructions,
                             record.accumulated_entries,
                             cause="degraded-epoch")
        return self._job(ship.tenant_id, ship.epoch, "full",
                         PRIORITY_FULL, ship.arrival_ms,
                         policy.full_deadline_ms,
                         policy.full_budget_instructions,
                         record.accumulated_entries,
                         cause="degraded-epoch")

    def _job(self, tenant_id: str, epoch: int, kind: str, priority: int,
             ready_ms: float, deadline_after_ms: float, budget: int,
             log_upto: int, cause: str) -> AuditJob:
        return AuditJob(tenant_id=tenant_id, epoch=epoch, kind=kind,
                        priority=priority, ready_ms=ready_ms,
                        deadline_ms=ready_ms + deadline_after_ms,
                        budget_instructions=budget, log_upto=log_upto,
                        cause=cause)

    # -- dispatch ----------------------------------------------------------

    def run_pending(self, gate: IngestGate,
                    jobs: int | None = None) -> list[AuditEvent]:
        """Drain the queue, batch replays over the fleet, judge results.

        Escalations spawned by a batch land in the queue and run in the
        next round; the loop ends when a round escalates nothing.
        """
        events: list[AuditEvent] = []
        while self.queue:
            batch = self.queue.drain()
            prepared = resolve_replays([(self, job, gate) for job in batch],
                                       jobs=jobs)
            for job, p in zip(batch, prepared):
                self.price(job, p)
                event = self.complete(job, p, gate)
                if event is not None:
                    events.append(event)
        return events

    def _prepare(self, job: AuditJob, gate: IngestGate
                 ) -> tuple[ReplayTask | None, ReplayTaskResult | None, bool]:
        """Resolve one job against the cache.

        Returns ``(task, outcome, cache_hit)`` — ``task=None`` when there
        is nothing admitted to replay, ``outcome=None`` when the fleet
        round still has to run it.
        """
        acc = gate.accumulator(job.tenant_id, job.epoch)
        entries = acc.log.entries[:job.log_upto]
        if not entries:
            return (None, None, False)
        window = EventLog()
        window.entries = list(entries)
        state = self.state(job.tenant_id)
        task = ReplayTask(program=state.spec.program,
                          log_bytes=window.to_bytes(),
                          config=self.config, seed=self.REPLAY_SEED,
                          max_instructions=job.budget_instructions)
        cached = self.cache.fetch_value(
            _compiled(task.program), window, config=task.config,
            seed=task.seed, max_instructions=task.max_instructions)
        return (task, cached, cached is not None)

    # -- pricing (dispatch time) -------------------------------------------

    def price(self, job: AuditJob, prepared,
              now_ms: float | None = None) -> tuple[float, float]:
        """Assign the job a virtual worker; stamp start/completion times.

        Pricing is separate from judgement so a fleet can put a job *in
        flight* — priced, completion scheduled on the sim clock — and
        only judge it if its node is still alive when the completion
        event fires.  ``now_ms`` floors the start at the dispatch
        instant (a rebalanced job cannot start in its past).
        """
        task, outcome, cache_hit = prepared
        policy = self.policy
        if task is None or cache_hit:
            service_ms = policy.cache_hit_cost_ms
        else:
            replayed, _ = outcome
            service_ms = replayed.instructions / policy.virtual_instr_per_ms
        service_ms *= self.time_factor
        ready = (job.ready_ms if now_ms is None
                 else max(job.ready_ms, now_ms))
        worker, start, completion = self.pool.assign(ready, service_ms)
        job.service_ms = service_ms
        job.worker = worker
        job.start_ms, job.completion_ms = start, completion
        return start, completion

    # -- judgement (completion time) ---------------------------------------

    def complete(self, job: AuditJob, prepared,
                 gate: IngestGate) -> AuditEvent | None:
        """Judge a priced job: compare, transition, record the verdict.

        Returns None when the idempotent sink has already recorded this
        job's identity — the at-least-once redelivery case, where the
        whole judgement (state transition included) must not repeat.
        """
        if self.sink.dedupe and self.sink.already_recorded(job.session_key):
            self.sink.count_duplicate()
            return None
        acc = gate.accumulator(job.tenant_id, job.epoch)
        state = self.state(job.tenant_id)
        policy = self.policy
        wire = self.wires.get((job.tenant_id, job.epoch))
        if wire is None:
            raise ServiceError(
                f"no wire observation for tenant '{job.tenant_id}' "
                f"epoch {job.epoch}")

        report: AuditReport | None = None
        task, outcome, cache_hit = prepared
        if task is None:
            # Nothing admitted: all segments were lost or quarantined.
            matched, replay_tx, consistent, diverged = 0, 0, None, None
        else:
            replayed, diverged = outcome
            replay_tx = len(replayed.tx)
            report, matched = compare_trace_prefix(wire, replayed)
            consistent = (report.is_consistent(policy.rel_threshold,
                                               policy.abs_threshold_ms)
                          if matched >= 2 else None)

        total_tx = len(wire.tx)
        coverage = matched / total_tx if total_tx else 0.0
        classification, follow_up = self._transition(
            job, state, acc, matched, replay_tx, total_tx, consistent,
            diverged)
        state.epochs_audited.add(job.epoch)

        event = AuditEvent(
            tenant_id=job.tenant_id, epoch=job.epoch, kind=job.kind,
            cause=job.cause, classification=classification,
            consistent=consistent, coverage=round(coverage, 4),
            matched_tx=matched, total_tx=total_tx,
            tenant_status=state.status.value,
            queue_latency_ms=round(job.queue_latency_ms, 3),
            service_ms=round(job.service_ms, 3), worker=job.worker,
            start_ms=round(job.start_ms, 3),
            completion_ms=round(job.completion_ms, 3),
            missed_deadline=job.missed_deadline, cache_hit=cache_hit,
            max_rel_ipd_diff=(round(report.max_rel_ipd_diff, 4)
                              if report is not None else 0.0),
            detail=diverged or "", node=self.node_id)
        self.sink.record(event)
        if follow_up is not None:
            self.queue.push(follow_up)
        return event

    def _transition(self, job: AuditJob, state: TenantState, acc,
                    matched: int, replay_tx: int, total_tx: int,
                    consistent: bool | None, diverged: str | None):
        """Apply one audit result to the state machine.

        Returns ``(classification, follow_up_job_or_None)``.

        A partial-prefix replay (spot check under budget, or a degraded
        epoch) legitimately ends short of the wire trace — often with a
        "log exhausted" divergence — so short coverage alone is never an
        anomaly.  The anomaly signals are (a) a payload mismatch *inside*
        the replayed window and (b) timing beyond the replay-accuracy
        bound; for full audits of an undamaged epoch, failing to cover
        the whole wire trace is a third.
        """
        policy = self.policy
        was_flagged = state.status.flagged
        payload_mismatch = matched < min(total_tx, replay_tx)
        timing_anomaly = consistent is False

        if job.kind in ("full", "escalated"):
            incomplete = (not acc.gap
                          and (matched < total_tx or diverged is not None))
            if acc.tampered:
                if not was_flagged:
                    state.status = TenantStatus.FLAGGED_TAMPER
                return AuditClassification.TAMPER_DETECTED, None
            if timing_anomaly:
                state.anomalies += 1
                if not was_flagged:
                    state.status = TenantStatus.FLAGGED_COVERT
                return AuditClassification.REPLAY_DIVERGENT, None
            if payload_mismatch or incomplete:
                state.anomalies += 1
                if not was_flagged:
                    state.status = TenantStatus.FLAGGED_DIVERGENT
                return AuditClassification.REPLAY_DIVERGENT, None
            if state.status == TenantStatus.SUSPECT:
                state.status = TenantStatus.NORMAL
                state.cleared += 1
            if acc.gap or matched < total_tx:
                return AuditClassification.TRANSFER_DEGRADED, None
            return AuditClassification.CLEAN, None

        # Spot checks never flag on their own — they escalate.
        if (timing_anomaly or payload_mismatch) and not was_flagged:
            state.status = TenantStatus.SUSPECT
            state.anomalies += 1
            state.escalations += 1
            follow_up = self._job(
                job.tenant_id, job.epoch, "escalated", PRIORITY_ESCALATED,
                job.completion_ms, policy.escalated_deadline_ms,
                policy.full_budget_instructions, len(acc.log.entries),
                cause=f"spot-anomaly:{job.cause}")
            if self.registry.enabled:
                self.registry.counter(
                    "service_escalations_total",
                    "Spot-check anomalies escalated to full replays").inc()
            return AuditClassification.REPLAY_DIVERGENT, follow_up
        if acc.gap:
            return AuditClassification.TRANSFER_DEGRADED, None
        # Partial coverage is the *design* of a spot check, not damage.
        return AuditClassification.CLEAN, None

"""Deterministic heartbeat failure detection for the verifier fleet.

Every node of the simulated fleet emits a heartbeat each
``heartbeat_interval_ms`` of virtual time, so silence is measurable
without wall clocks: when a node crashes or stalls at virtual time T,
its last heartbeat was at ``floor(T / interval) * interval``, and the
detector fires at ``last_heartbeat + timeout * backoff**strikes``.

The backoff exponent is the node's *strike count* — how many times it
has previously gone silent and come back.  A flapping node (repeated
stalls) therefore earns an increasingly long grace period before its
work is stolen, while a first failure is detected at the base timeout.
Because every input is virtual time derived from the seed, detection
instants are a pure function of the chaos plan — the fleet schedules
them as ordinary simulator events and the run stays bit-reproducible.

Detection is deliberately conservative about *which* signal it is: a
silent node is only **suspected** until the fleet learns (from the
chaos plan's ground truth, standing in for an operator or a longer
quarantine) that the failure is permanent.  Suspected nodes keep ring
ownership but lose their queue to work stealing; confirmed-dead nodes
are evicted from the ring and their sessions rebalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.service.simclock import ServiceError

__all__ = ["FailureDetector", "NodeHealth"]


@dataclass
class NodeHealth:
    """What the detector believes about one node."""

    node_id: str
    strikes: int = 0              #: prior silences that later resolved
    suspected: bool = False
    suspected_at_ms: float = -1.0
    dead: bool = False
    dead_at_ms: float = -1.0


@dataclass
class FailureDetector:
    """Virtual-time heartbeat bookkeeping over a fixed node roster."""

    node_ids: tuple
    heartbeat_interval_ms: float = 100.0
    timeout_ms: float = 350.0
    backoff: float = 2.0
    health: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ServiceError("heartbeat interval must be positive")
        if self.timeout_ms <= 0:
            raise ServiceError("failure timeout must be positive")
        if self.backoff < 1.0:
            raise ServiceError(
                f"backoff must be >= 1, got {self.backoff}")
        for node_id in self.node_ids:
            self.health[node_id] = NodeHealth(node_id=node_id)

    def node(self, node_id: str) -> NodeHealth:
        health = self.health.get(node_id)
        if health is None:
            raise ServiceError(f"unknown node '{node_id}'")
        return health

    # -- the detection timeline --------------------------------------------

    def last_heartbeat_ms(self, silent_from_ms: float) -> float:
        """The last beat a node emitted before going silent."""
        return math.floor(
            silent_from_ms / self.heartbeat_interval_ms
        ) * self.heartbeat_interval_ms

    def detection_ms(self, node_id: str, silent_from_ms: float) -> float:
        """When silence starting at ``silent_from_ms`` becomes suspicion."""
        grace = self.timeout_ms * self.backoff ** self.node(node_id).strikes
        return max(silent_from_ms,
                   self.last_heartbeat_ms(silent_from_ms) + grace)

    # -- state transitions (driven by the fleet's event loop) --------------

    def suspect(self, node_id: str, now_ms: float) -> NodeHealth:
        health = self.node(node_id)
        if not health.suspected and not health.dead:
            health.suspected = True
            health.suspected_at_ms = now_ms
        return health

    def resume(self, node_id: str, now_ms: float) -> NodeHealth:
        """A silent node heartbeats again: clear suspicion, add a strike."""
        health = self.node(node_id)
        if health.dead:
            raise ServiceError(
                f"node '{node_id}' resumed after being declared dead "
                f"at {health.dead_at_ms} ms")
        if health.suspected:
            health.suspected = False
            health.suspected_at_ms = -1.0
        health.strikes += 1
        return health

    def declare_dead(self, node_id: str, now_ms: float) -> NodeHealth:
        health = self.node(node_id)
        health.suspected = False
        health.dead = True
        health.dead_at_ms = now_ms
        return health

    # -- roster views ------------------------------------------------------

    def live_nodes(self) -> list[str]:
        """Nodes not declared dead (suspects included), sorted."""
        return sorted(node_id for node_id, health in self.health.items()
                      if not health.dead)

    def dead_nodes(self) -> list[str]:
        return sorted(node_id for node_id, health in self.health.items()
                      if health.dead)

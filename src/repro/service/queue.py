"""Priority audit queue: budgets, deadlines, backpressure.

The verifier multiplexes one bounded worker pool over every tenant, so
the queue is where fairness and urgency are decided:

* **Priority classes** — escalations (a suspect tenant's full-prefix
  replay) preempt scheduled full audits, which preempt routine spot
  checks.  Within a class, jobs dispatch in ready-time order with a
  deterministic sequence tie-break, mirroring the sim clock's rule.
* **Per-tenant budgets** — a tenant may hold at most ``tenant_budget``
  queued jobs; beyond that its *spot checks* are refused (counted, not
  erred), so a noisy or degraded tenant cannot starve the others.
  Escalated jobs are exempt: a tamper signal must never be shed.
* **Backpressure** — a global ``max_depth`` bounds the queue.  When full,
  pushing a higher class evicts the most recently queued spot check
  (freshest first, so the oldest routine work still gets audited);
  pushing a spot check while full simply sheds it.

Every shed/refusal is observable (``service_queue_shed_total`` etc.) and
deterministic — shedding depends only on queue content, never timing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service.simclock import ServiceError

#: Priority classes, lower dispatches first.
PRIORITY_ESCALATED = 0
PRIORITY_FULL = 1
PRIORITY_SPOT = 2

_PRIORITY_NAMES = {PRIORITY_ESCALATED: "escalated",
                   PRIORITY_FULL: "full",
                   PRIORITY_SPOT: "spot"}


@dataclass
class AuditJob:
    """One unit of replay work awaiting a verifier worker."""

    tenant_id: str
    epoch: int
    kind: str                     #: "spot" | "full" | "escalated"
    priority: int
    ready_ms: float               #: when the job became schedulable
    deadline_ms: float            #: audit-SLO deadline (report-only)
    #: Replay budget for the job, in machine instructions (the cost
    #: model and the worker's ``max_instructions`` both read this).
    budget_instructions: int
    #: Audit window: how many accumulated log entries existed when the
    #: job was created.  Replays use exactly this prefix, so a spot
    #: check stays incremental even though dispatch happens in batches
    #: after more segments have landed.
    log_upto: int = 0
    #: Reason the job exists ("cadence", "segment", "divergence", ...).
    cause: str = ""
    seq: int = -1                 #: assigned by the queue at push time
    start_ms: float = -1.0        #: stamped at dispatch
    completion_ms: float = -1.0   #: stamped at completion
    service_ms: float = 0.0       #: priced at dispatch (virtual cost model)
    worker: int = -1              #: virtual worker that served it

    @property
    def session_key(self) -> tuple:
        """Identity used for verdict dedup and exactly-once requeue."""
        return (self.tenant_id, self.epoch, self.kind, self.cause)

    @property
    def queue_latency_ms(self) -> float:
        """Time spent waiting between ready and dispatch."""
        return max(0.0, self.start_ms - self.ready_ms)

    @property
    def missed_deadline(self) -> bool:
        return self.completion_ms > self.deadline_ms >= 0


@dataclass
class QueueStats:
    """Counters the verdict report surfaces per run."""

    pushed: int = 0
    popped: int = 0
    shed: int = 0                 #: dropped by global backpressure
    refused: int = 0              #: rejected by a tenant budget
    peak_depth: int = 0
    shed_by_tenant: dict[str, int] = field(default_factory=dict)


class AuditQueue:
    """Bounded, tenant-budgeted priority queue of :class:`AuditJob`."""

    def __init__(self, max_depth: int = 64, tenant_budget: int = 8,
                 registry: MetricsRegistry | None = None) -> None:
        if max_depth < 1:
            raise ServiceError(f"queue depth must be >= 1, got {max_depth}")
        if tenant_budget < 1:
            raise ServiceError(
                f"tenant budget must be >= 1, got {tenant_budget}")
        self.max_depth = max_depth
        self.tenant_budget = tenant_budget
        self.registry = registry if registry is not None else get_registry()
        self._heap: list[tuple[int, float, int, AuditJob]] = []
        self._seq = 0
        self._queued_per_tenant: dict[str, int] = {}
        self.stats = QueueStats()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def depth_for(self, tenant_id: str) -> int:
        return self._queued_per_tenant.get(tenant_id, 0)

    # -- push / pop --------------------------------------------------------

    def push(self, job: AuditJob, force: bool = False) -> bool:
        """Enqueue ``job``; returns False when budget/backpressure shed it.

        ``force=True`` bypasses the tenant budget and global
        backpressure — used by fleet rebalance and work stealing, where
        a job has already been *delivered* once and silently shedding it
        would break the at-least-once invariant.
        """
        if not force and job.priority == PRIORITY_SPOT \
                and self.depth_for(job.tenant_id) >= self.tenant_budget:
            self.stats.refused += 1
            self._count("service_queue_refused_total",
                        "Jobs refused by a per-tenant budget")
            return False
        if not force and len(self._heap) >= self.max_depth:
            if not self._make_room(job):
                self.stats.shed += 1
                self.stats.shed_by_tenant[job.tenant_id] = \
                    self.stats.shed_by_tenant.get(job.tenant_id, 0) + 1
                self._count("service_queue_shed_total",
                            "Jobs dropped by queue backpressure")
                return False
        job.seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap,
                       (job.priority, job.ready_ms, job.seq, job))
        self._queued_per_tenant[job.tenant_id] = \
            self.depth_for(job.tenant_id) + 1
        self.stats.pushed += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._heap))
        self._count("service_queue_pushed_total", "Jobs enqueued")
        return True

    def pop(self) -> AuditJob:
        """Dequeue the most urgent job (priority, ready time, sequence)."""
        if not self._heap:
            raise ServiceError("pop from an empty audit queue")
        _, _, _, job = heapq.heappop(self._heap)
        self._queued_per_tenant[job.tenant_id] -= 1
        self.stats.popped += 1
        return job

    def drain(self) -> list[AuditJob]:
        """Pop everything, in dispatch order."""
        jobs = []
        while self._heap:
            jobs.append(self.pop())
        return jobs

    def steal(self, count: int) -> list[AuditJob]:
        """Remove up to ``count`` jobs for a work-stealing peer.

        Most-urgent first: when a suspect or backlogged node is being
        relieved, its escalations are exactly the work that must not
        wait for the failure to resolve.
        """
        return [self.pop() for _ in range(min(count, len(self._heap)))]

    # -- backpressure ------------------------------------------------------

    def _make_room(self, incoming: AuditJob) -> bool:
        """Evict one spot check to admit a higher class; False = no room."""
        if incoming.priority >= PRIORITY_SPOT:
            return False
        # Evict the *freshest* spot check (largest seq): the oldest
        # routine work keeps its place, and the evicted check will be
        # regenerated by the next cadence tick anyway.
        victim_idx = None
        for idx, (priority, _, seq, _) in enumerate(self._heap):
            if priority == PRIORITY_SPOT and (
                    victim_idx is None
                    or seq > self._heap[victim_idx][2]):
                victim_idx = idx
        if victim_idx is None:
            return False
        _, _, _, victim = self._heap.pop(victim_idx)
        heapq.heapify(self._heap)
        self._queued_per_tenant[victim.tenant_id] -= 1
        self.stats.shed += 1
        self.stats.shed_by_tenant[victim.tenant_id] = \
            self.stats.shed_by_tenant.get(victim.tenant_id, 0) + 1
        self._count("service_queue_shed_total",
                    "Jobs dropped by queue backpressure")
        return True

    def _count(self, name: str, help_text: str) -> None:
        if self.registry.enabled:
            self.registry.counter(name, help_text).inc()


def priority_name(priority: int) -> str:
    return _PRIORITY_NAMES.get(priority, str(priority))

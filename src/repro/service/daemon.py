"""The continuous-audit verifier daemon, simulated end to end.

:class:`AuditService` wires the whole pipeline together and runs it
under the seeded discrete-event clock:

1. **Play** — each epoch, every tenant's machine execution runs as a
   batched, submission-ordered :func:`~repro.analysis.parallel.run_fleet`
   round (covert tenants inject their ``covert_delay`` schedule here;
   the verifier's trusted wire vantage captures what actually went out).
2. **Ship** — each session chains, signs, and transfers its log in
   segments; arrivals land on the :class:`~repro.service.simclock.SimClock`
   at virtual times derived from the lossy-channel model.
3. **Ingest** — arrivals pop in deterministic order and pass the CRC +
   attestation-chain gate; admitted segments spawn audit jobs.
4. **Audit** — the scheduler drains the priority queue in dispatch
   rounds, replaying through the cache-backed fleet and feeding the
   escalation state machine until no job (including freshly escalated
   ones) remains.

`run` returns a :class:`~repro.service.verdicts.ServiceReport` that is a
pure function of ``(seed, tenant roster, policy)`` — the determinism
suite pins byte-equality of its :meth:`verdicts_dict` across repeat runs
and across ``--jobs`` settings.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.analysis.parallel import run_fleet
from repro.core.replay_cache import ReplayCache
from repro.machine.config import MachineConfig
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service.ingest import IngestGate
from repro.service.queue import AuditQueue
from repro.service.scheduler import AuditScheduler, EscalationPolicy
from repro.service.session import ProverSession, TenantSpec
from repro.service.simclock import ServiceError, SimClock, WorkerPool
from repro.service.verdicts import ServiceReport, VerdictSink


def default_tenants(num_tenants: int, covert_channel: str = "ipctc",
                    requests: int = 6, segments: int = 3) -> list[TenantSpec]:
    """The standard roster: tenant 1 covert, the middle third degraded.

    Deterministic by construction (no randomness — the interesting
    variation comes from per-tenant seeds derived inside the sessions).
    """
    if num_tenants < 1:
        raise ServiceError(f"need >= 1 tenant, got {num_tenants}")
    tenants = []
    for i in range(num_tenants):
        covert = covert_channel if i == 1 and num_tenants > 1 else None
        degraded = (num_tenants > 2 and i == num_tenants - 1)
        tenants.append(TenantSpec(
            tenant_id=f"tenant-{i:02d}", requests=requests,
            seed=101 + i, covert_channel=covert,
            drop_rate=0.12 if degraded else 0.0,
            segments=segments))
    return tenants


def play_and_ship(sessions: dict, epoch: int, epoch_start: float,
                  jobs: int | None = None) -> list:
    """Play every tenant's epoch in one fleet batch and ship the logs.

    The prover side of the pipeline, shared by the single-node
    :class:`AuditService` and the sharded
    :class:`~repro.service.fleet.FleetService` — tenants' machines run
    regardless of which verifier node will audit them (or whether that
    node survives).  Returns ``[(tenant_id, EpochShipment), ...]`` in
    sorted-tenant order; replays stay submission-ordered so ``jobs``
    changes wall-clock only.
    """
    order = sorted(sessions)
    specs = [sessions[tid].play_spec(epoch) for tid in order]
    results = run_fleet(specs, jobs=jobs)
    return [(tid, sessions[tid].ship(epoch, result, epoch_start))
            for tid, result in zip(order, results)]


class AuditService:
    """A multi-tenant verifier daemon over virtual time."""

    def __init__(self, tenants: list[TenantSpec], epochs: int = 2,
                 seed: int = 0, config: MachineConfig | None = None,
                 policy: EscalationPolicy | None = None,
                 num_workers: int = 2, queue_depth: int = 64,
                 tenant_budget: int = 8,
                 epoch_interval_ms: float = 400.0,
                 segment_interval_ms: float = 40.0,
                 registry: MetricsRegistry | None = None) -> None:
        if epochs < 1:
            raise ServiceError(f"need >= 1 epoch, got {epochs}")
        ids = [spec.tenant_id for spec in tenants]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate tenant ids in roster: {ids}")
        self.epochs = epochs
        self.seed = seed
        self.config = config or MachineConfig()
        self.epoch_interval_ms = epoch_interval_ms
        self.registry = registry if registry is not None else get_registry()
        self.specs = {spec.tenant_id: spec for spec in tenants}
        self.sessions = {
            spec.tenant_id: ProverSession(
                spec, config=self.config, service_seed=seed,
                segment_interval_ms=segment_interval_ms)
            for spec in tenants}
        self.clock = SimClock()
        self.gate = IngestGate(self.specs, registry=self.registry)
        self.scheduler = AuditScheduler(
            self.specs, config=self.config, policy=policy,
            queue=AuditQueue(max_depth=queue_depth,
                             tenant_budget=tenant_budget,
                             registry=self.registry),
            pool=WorkerPool(num_workers=num_workers),
            cache=ReplayCache(maxsize=4 * max(1, len(tenants)),
                              registry=self.registry),
            sink=VerdictSink(registry=self.registry),
            registry=self.registry)
        self._segments_shipped = 0

    # -- the epoch loop ----------------------------------------------------

    def run_epoch(self, epoch: int, jobs: int | None = None) -> None:
        """Play, ship, ingest, and audit one epoch for every tenant."""
        epoch_start = max(self.clock.now_ms, epoch * self.epoch_interval_ms)
        for tid, shipment in play_and_ship(self.sessions, epoch,
                                           epoch_start, jobs=jobs):
            self.scheduler.observe_wire(tid, epoch, shipment.wire)
            self._segments_shipped += len(shipment.shipments)
            for segment in shipment.shipments:
                self.clock.schedule(segment.arrival_ms, "segment", segment)

        while self.clock:
            event = self.clock.pop()
            record = self.gate.admit(event.payload)
            self.scheduler.note_admission(record, self.gate)

        self.scheduler.run_pending(self.gate, jobs=jobs)

    def run(self, jobs: int | None = None) -> ServiceReport:
        """Run every epoch and assemble the report."""
        for epoch in range(self.epochs):
            self.run_epoch(epoch, jobs=jobs)
        return self.report()

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServiceReport:
        sink = self.scheduler.sink
        horizon = max(
            [self.clock.now_ms]
            + [e.completion_ms for e in sink.events])
        stats = asdict(self.scheduler.queue.stats)
        return ServiceReport(
            seed=self.seed, epochs=self.epochs,
            ledgers=dict(sink.ledgers),
            queue_stats=stats,
            utilization=self.scheduler.pool.utilization(horizon),
            num_workers=self.scheduler.pool.num_workers,
            cache_hits=self.scheduler.cache.hits,
            cache_misses=self.scheduler.cache.misses,
            horizon_ms=horizon,
            segments_shipped=self._segments_shipped,
            metrics=(self.registry.snapshot()
                     if self.registry.enabled else {}))


def persist_service_report(runstore, report: ServiceReport,
                           label: str = "") -> str:
    """Save a service run (kind ``service``) to a run store."""
    from repro.obs.runstore import RunRecord

    record = RunRecord(
        kind="service", label=label,
        seeds=[report.seed],
        metrics=report.metrics,
        verdicts=report.verdicts_dict(),
        figures={"horizon_ms": report.horizon_ms,
                 "utilization": report.utilization,
                 "queue": dict(report.queue_stats)})
    return runstore.save(record)

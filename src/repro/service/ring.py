"""Consistent-hash tenant placement for the verifier fleet.

Tenants are assigned to verifier nodes by a classic consistent-hash
ring with virtual nodes: each node projects ``vnodes`` points onto a
64-bit circle, and a tenant belongs to the first node point at or after
its own hash, wrapping around.  The property the fleet's rebalance
invariant leans on: removing a node moves *only* the tenants that node
owned (each to the next point on the circle), and adding one back
restores the original assignment — so shard loss reassigns ~K/N tenants
instead of reshuffling everyone.

Hashing uses :func:`repro.determinism.hash_string` (FNV-1a folded
through a SplitMix64 finalizer), never Python's ``hash()``: the ring
must agree across processes and across ``PYTHONHASHSEED`` values,
because a fleet run is a pure function of (seed, roster, topology) and
the determinism suite compares assignments across interpreter
invocations.
"""

from __future__ import annotations

import bisect

from repro.determinism import hash_string
from repro.service.simclock import ServiceError

__all__ = ["HashRing"]


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes."""

    def __init__(self, nodes: "list[str] | tuple[str, ...]" = (),
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._keys: list[int] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [(hash_string(f"ring:{node}#{replica}"), node)
                for replica in range(self.vnodes)]

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ServiceError(f"node '{node}' already on the ring")
        self._nodes.add(node)
        self._points.extend(self._node_points(node))
        self._rebuild()

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ServiceError(f"node '{node}' not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        self._rebuild()

    def _rebuild(self) -> None:
        self._points.sort()
        self._keys = [point for point, _ in self._points]

    # -- assignment --------------------------------------------------------

    def assign(self, key: str) -> str | None:
        """The owning node for ``key``; None when the ring is empty."""
        if not self._points:
            return None
        point = hash_string(f"key:{key}")
        index = bisect.bisect_left(self._keys, point)
        if index == len(self._points):
            index = 0                  # wrap past the top of the circle
        return self._points[index][1]

    def assignment(self, keys) -> dict[str, str | None]:
        """Owner per key — the table rebalance diffs before/after."""
        return {key: self.assign(key) for key in keys}

"""A sharded verifier fleet with chaos, rebalance, and graceful degradation.

:class:`FleetService` scales the single-node
:class:`~repro.service.daemon.AuditService` out to N verifier nodes on
the *same* discrete-event clock:

* **Placement** — tenants are owned via a consistent-hash
  :class:`~repro.service.ring.HashRing` (removing a node moves only its
  own tenants).
* **Shared replay tier** — every node's scheduler holds a per-node
  :meth:`~repro.core.replay_cache.ReplayCache.view` of one
  content-addressed cache, so a prefix replayed by node 2 is a hit for
  node 5, with hits/misses still attributed per node.
* **Failure handling** — a seeded
  :class:`~repro.faults.plans.NodeChaosPlan` crashes, stalls, or slows
  nodes at known virtual times; the heartbeat
  :class:`~repro.service.failure.FailureDetector` turns silence into
  suspicion after a deterministic timeout (with per-node backoff for
  flappers).  Suspects lose their queue to work stealing; confirmed
  crashes trigger a ring rebalance that re-enqueues orphaned jobs
  **exactly once** — delivery is at-least-once, and the
  :class:`~repro.service.verdicts.VerdictSink` is idempotent on the job
  identity, so nothing is lost and nothing is double-verdicted.
* **Graceful degradation** — when capacity drops below the topology's
  ``degrade_below`` fraction, surviving nodes shed to spot-check-only
  mode (full audits demote; escalations keep full budgets), and any
  session the fleet genuinely cannot audit terminates in an explicit
  :class:`~repro.service.verdicts.UnauditedRecord` — never a silent
  drop.

The invariant everything above preserves: a fleet run is a pure
function of (seed, roster, policy, topology, chaos plan).  Killing node
3 at tick T yields bit-identical verdict sets, rebalance events, and
ledger sums across reruns and across ``jobs=1`` vs ``jobs=4``, because
every decision keys off virtual time and the seed — including the
failure detector's.

Dispatch works as a discrete-event loop rather than the daemon's
drain-then-audit phases: queued jobs are priced onto their node's
virtual worker pool the moment they could start, and their *judgement*
is a scheduled completion event.  A crash that lands between a job's
start and completion therefore kills it in flight — the verdict is
discarded and the job is redelivered by the rebalance, exercising the
at-least-once path for real.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.replay_cache import ReplayCache
from repro.faults.plans import NodeChaosPlan
from repro.machine.config import MachineConfig
from repro.obs.dist import FLEET_TRACK, DistTracer
from repro.obs.metrics import MetricsRegistry, get_registry, labeled
from repro.obs.tracer import SpanTracer
from repro.service.daemon import play_and_ship
from repro.service.failure import FailureDetector
from repro.service.ingest import IngestGate
from repro.service.queue import AuditJob, AuditQueue
from repro.service.ring import HashRing
from repro.service.scheduler import (AuditScheduler, EscalationPolicy,
                                     TenantState, resolve_replays)
from repro.service.session import ProverSession, TenantSpec
from repro.service.simclock import ServiceError, SimClock, WorkerPool
from repro.service.verdicts import (TenantLedger, UnauditedRecord,
                                    VerdictSink)

__all__ = ["FleetNode", "FleetReport", "FleetService", "FleetTopology",
           "RebalanceEvent", "persist_fleet_report"]


@dataclass(frozen=True)
class FleetTopology:
    """Shape and failure-handling knobs of one verifier fleet."""

    num_nodes: int = 4
    #: Virtual points per node on the consistent-hash ring.
    vnodes: int = 64
    workers_per_node: int = 2
    queue_depth: int = 64
    tenant_budget: int = 8
    #: Heartbeat cadence and the base silence-to-suspicion timeout.
    heartbeat_interval_ms: float = 100.0
    failure_timeout_ms: float = 350.0
    #: Grace multiplier per prior strike (a flapping node earns patience).
    failure_backoff: float = 2.0
    #: Queue depth beyond which a slow node's backlog gets stolen.
    steal_threshold: int = 4
    #: Alive fraction below which the fleet sheds to spot-check-only.
    degrade_below: float = 0.5

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ServiceError(f"need >= 1 node, got {self.num_nodes}")
        if not 0.0 <= self.degrade_below <= 1.0:
            raise ServiceError(
                f"degrade_below must be in [0, 1]: {self.degrade_below}")

    def to_json_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class RebalanceEvent:
    """One ring rebalance after a confirmed node death."""

    time_ms: float
    node: str
    reason: str
    moved_tenants: tuple
    requeued: int                 #: orphaned jobs redelivered (exactly once)
    killed_in_flight: int         #: audits that died with the node

    def to_json_dict(self) -> dict:
        data = asdict(self)
        data["moved_tenants"] = list(self.moved_tenants)
        return data


class FleetNode:
    """One verifier node: a scheduler plus its failure state."""

    def __init__(self, index: int, node_id: str,
                 scheduler: AuditScheduler) -> None:
        self.index = index
        self.node_id = node_id
        self.scheduler = scheduler
        #: Jobs priced and awaiting their completion event, by identity.
        self.in_flight: dict[tuple, AuditJob] = {}
        self.crashed_at: float | None = None
        self.stall_until = 0.0
        self.slow_factor = 1.0
        self.evicted = False      #: confirmed dead and off the ring

    def can_dispatch(self, now_ms: float) -> bool:
        """Whether this node starts new audits at ``now_ms``.

        A crashed node stops immediately even before anyone *detects*
        the crash — detection latency governs recovery, not death.  A
        stalled node pauses dispatch but lets in-flight work finish.
        """
        return (not self.evicted and self.crashed_at is None
                and now_ms >= self.stall_until)

    def status(self, detector: FailureDetector) -> str:
        if self.evicted or self.crashed_at is not None:
            return "dead"
        if detector.node(self.node_id).suspected:
            return "suspected"
        if self.slow_factor > 1.0:
            return f"slow(x{self.slow_factor:g})"
        return "alive"


class FleetService:
    """N audit nodes, one clock, one ingest tier, one verdict history."""

    def __init__(self, tenants: list[TenantSpec],
                 topology: FleetTopology | None = None,
                 epochs: int = 2, seed: int = 0,
                 config: MachineConfig | None = None,
                 policy: EscalationPolicy | None = None,
                 chaos: NodeChaosPlan | None = None,
                 epoch_interval_ms: float = 400.0,
                 segment_interval_ms: float = 40.0,
                 registry: MetricsRegistry | None = None,
                 trace: bool = True) -> None:
        if epochs < 1:
            raise ServiceError(f"need >= 1 epoch, got {epochs}")
        ids = [spec.tenant_id for spec in tenants]
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate tenant ids in roster: {ids}")
        self.topology = topology or FleetTopology()
        self.epochs = epochs
        self.seed = seed
        self.config = config or MachineConfig()
        self.chaos = chaos
        self.epoch_interval_ms = epoch_interval_ms
        self.registry = registry if registry is not None else get_registry()
        self.specs = {spec.tenant_id: spec for spec in tenants}
        self.tenant_ids = sorted(self.specs)
        self.sessions = {
            spec.tenant_id: ProverSession(
                spec, config=self.config, service_seed=seed,
                segment_interval_ms=segment_interval_ms)
            for spec in tenants}

        self.clock = SimClock()
        #: Rebalance spans and chaos instants, on the virtual clock
        #: (the tracer's time source is in nanoseconds).
        self.tracer = SpanTracer(
            time_fn=lambda: self.clock.now_ms * 1e6)
        #: The fleet-wide session trace: per-node span tracks, latency
        #: series, chaos markers.  Purely observational — disabling it
        #: (``trace=False``) is bit-identical in every verdict.
        self.dist: DistTracer | None = (DistTracer(seed=seed)
                                        if trace else None)
        self.gate = IngestGate(self.specs, registry=self.registry)
        #: One idempotent verdict history for the whole fleet.
        self.sink = VerdictSink(registry=self.registry, dedupe=True)
        #: Shared tenant state machines: escalation history must follow
        #: a tenant to its new owner after a rebalance.
        self.states = {tid: TenantState(spec=spec)
                       for tid, spec in self.specs.items()}
        self.wires: dict[tuple, object] = {}
        #: The shared content-addressed replay tier (per-node views).
        self.cache_tier = ReplayCache(
            maxsize=max(64, 8 * len(tenants)), registry=self.registry)

        node_ids = [f"node-{i:02d}"
                    for i in range(self.topology.num_nodes)]
        self.ring = HashRing(node_ids, vnodes=self.topology.vnodes)
        self.detector = FailureDetector(
            tuple(node_ids),
            heartbeat_interval_ms=self.topology.heartbeat_interval_ms,
            timeout_ms=self.topology.failure_timeout_ms,
            backoff=self.topology.failure_backoff)
        self.nodes: list[FleetNode] = []
        for index, node_id in enumerate(node_ids):
            scheduler = AuditScheduler(
                self.specs, config=self.config, policy=policy,
                queue=AuditQueue(max_depth=self.topology.queue_depth,
                                 tenant_budget=self.topology.tenant_budget,
                                 registry=self.registry),
                pool=WorkerPool(num_workers=self.topology.workers_per_node),
                cache=self.cache_tier.view(node_id),
                sink=self.sink, registry=self.registry,
                states=self.states, node_id=node_id)
            scheduler.wires = self.wires
            self.nodes.append(FleetNode(index, node_id, scheduler))
        self.node_by_id = {node.node_id: node for node in self.nodes}
        if self.dist is not None:
            # Register tracks up front so tid order is roster order, not
            # first-span order.
            for node_id in node_ids:
                self.dist.register_track(node_id)

        #: Exactly-once redelivery guard, by job identity.
        self._requeued: set[tuple] = set()
        #: Sessions that lost every possible owner (ring went empty).
        self._no_owner: set[tuple] = set()
        #: Every ingested (tenant, epoch) — the zero-silent-drop ledger.
        self._sessions: set[tuple] = set()
        self.rebalances: list[RebalanceEvent] = []
        self.degraded_mode = False
        self.killed_in_flight = 0
        self.requeued = 0
        self.steals = 0
        self.segments_shipped = 0

    # -- the run loop ------------------------------------------------------

    def run(self, jobs: int | None = None) -> "FleetReport":
        """Run every epoch under the chaos plan; assemble the report."""
        if self.chaos is not None:
            for fault in self.chaos.for_fleet(self.topology.num_nodes):
                self.clock.schedule(max(fault.at_ms, self.clock.now_ms),
                                    "chaos", fault)
        for epoch in range(self.epochs):
            self._run_epoch(epoch, jobs)
        return self.report()

    def _run_epoch(self, epoch: int, jobs: int | None) -> None:
        epoch_start = max(self.clock.now_ms,
                          epoch * self.epoch_interval_ms)
        for tid, shipment in play_and_ship(self.sessions, epoch,
                                           epoch_start, jobs=jobs):
            self.wires[(tid, epoch)] = shipment.wire
            self.segments_shipped += len(shipment.shipments)
            self._sessions.add((tid, epoch))
            for segment in shipment.shipments:
                self.clock.schedule(segment.arrival_ms, "segment", segment)
        self._pump(jobs)

    def _pump(self, jobs: int | None) -> None:
        """Alternate dispatch with event processing until quiescent.

        Dispatching *between* events (not after a full drain) is what
        puts audits in flight across chaos instants: a job priced at
        t=100 with completion t=350 genuinely dies when its node
        crashes at t=300.
        """
        while True:
            self._steal_pass()
            dispatched = self._dispatch(jobs)
            if self.clock:
                event = self.clock.pop()
                self._handle(event)
            elif not dispatched:
                return

    def _handle(self, event) -> None:
        if event.kind == "segment":
            self._handle_segment(event.payload)
        elif event.kind == "chaos":
            self._handle_chaos(event.payload)
        elif event.kind == "detect":
            self._handle_detect(event.payload)
        elif event.kind == "stall-end":
            self._handle_stall_end(event.payload)
        elif event.kind == "completion":
            self._handle_completion(event.payload)
        else:
            raise ServiceError(f"unknown fleet event kind '{event.kind}'")

    # -- ingest routing ----------------------------------------------------

    def _handle_segment(self, segment) -> None:
        record = self.gate.admit(segment)
        if self.dist is not None:
            self.dist.session_start(segment.tenant_id, segment.epoch,
                                    segment.arrival_ms)
            self.dist.instant(
                f"ingest:{record.status.value}", FLEET_TRACK,
                segment.arrival_ms, category="ingest",
                tenant=segment.tenant_id, epoch=segment.epoch,
                seq=segment.seq)
        owner_id = self.ring.assign(segment.tenant_id)
        if owner_id is None:
            # Total capacity loss: remember the session so the report
            # closes it with an explicit unaudited(no-capacity) record.
            self._no_owner.add((segment.tenant_id, segment.epoch))
            return
        owner = self.node_by_id[owner_id]
        owner.scheduler.note_admission(record, self.gate)

    # -- chaos and failure detection ---------------------------------------

    def _handle_chaos(self, fault) -> None:
        node = self.nodes[fault.node]
        now = self.clock.now_ms
        if node.evicted or node.crashed_at is not None:
            return
        if fault.kind == "crash":
            node.crashed_at = now
            self.tracer.instant(f"crash:{node.node_id}", category="chaos")
            if self.dist is not None:
                self.dist.instant(f"crash:{node.node_id}", node.node_id,
                                  now, category="chaos")
            self._count(labeled("fleet_node_crashes_total",
                                node=node.node_id),
                        "Node crash faults applied")
            self.clock.schedule(
                self.detector.detection_ms(node.node_id, now),
                "detect", node.node_id)
        elif fault.kind == "stall":
            node.stall_until = max(node.stall_until,
                                   now + fault.duration_ms)
            self.tracer.instant(f"stall:{node.node_id}", category="chaos",
                                duration_ms=fault.duration_ms)
            if self.dist is not None:
                self.dist.instant(f"stall:{node.node_id}", node.node_id,
                                  now, category="chaos",
                                  duration_ms=fault.duration_ms)
            detect_at = self.detector.detection_ms(node.node_id, now)
            if detect_at < node.stall_until:
                # The silence outlives the grace period: suspicion will
                # fire while the node is still stalled.
                self.clock.schedule(detect_at, "detect", node.node_id)
            self.clock.schedule(node.stall_until, "stall-end",
                                node.node_id)
        elif fault.kind == "slow":
            node.slow_factor = max(node.slow_factor, fault.factor)
            node.scheduler.time_factor = node.slow_factor
            self.tracer.instant(f"slow:{node.node_id}", category="chaos",
                                factor=fault.factor)
            if self.dist is not None:
                self.dist.instant(f"slow:{node.node_id}", node.node_id,
                                  now, category="chaos",
                                  factor=fault.factor)
        else:
            raise ServiceError(f"unknown node fault kind '{fault.kind}'")

    def _handle_detect(self, node_id: str) -> None:
        node = self.node_by_id[node_id]
        now = self.clock.now_ms
        if node.evicted:
            return
        if node.crashed_at is not None:
            self.detector.declare_dead(node_id, now)
            self._rebalance(node, now, reason="crash")
        elif now < node.stall_until:
            # Still silent past the grace period: suspect it.  Ring
            # ownership stays (it may come back); the steal pass
            # relieves its queue in the meantime.
            self.detector.suspect(node_id, now)
            self.tracer.instant(f"suspect:{node_id}", category="detector")
            if self.dist is not None:
                self.dist.instant(f"suspect:{node_id}", node_id, now,
                                  category="detector")
        # Otherwise the node resumed before the timeout — a blip the
        # detector never saw.

    def _handle_stall_end(self, node_id: str) -> None:
        node = self.node_by_id[node_id]
        if node.evicted or node.crashed_at is not None:
            return
        if self.clock.now_ms < node.stall_until:
            return                 # superseded by a longer stall
        health = self.detector.node(node_id)
        if health.suspected:
            # Back from the dead: clear suspicion, but remember the
            # strike — the next silence gets a longer grace period.
            self.detector.resume(node_id, self.clock.now_ms)
            self.tracer.instant(f"resume:{node_id}", category="detector")
            if self.dist is not None:
                self.dist.instant(f"resume:{node_id}", node_id,
                                  self.clock.now_ms, category="detector")

    # -- rebalance (the at-least-once redelivery path) ---------------------

    def _rebalance(self, node: FleetNode, now: float, reason: str) -> None:
        self.tracer.begin(f"rebalance:{node.node_id}", category="fleet",
                          reason=reason)
        before = self.ring.assignment(self.tenant_ids)
        self.ring.remove_node(node.node_id)
        after = self.ring.assignment(self.tenant_ids)
        moved = tuple(tid for tid in self.tenant_ids
                      if before[tid] != after[tid])
        node.evicted = True

        # Orphans: everything queued on the dead node plus everything it
        # had in flight (those completion events will now be discarded).
        orphans = node.scheduler.queue.drain()
        orphans += [job for _, job in sorted(node.in_flight.items())]
        killed = len(node.in_flight)
        if self.dist is not None:
            self.dist.instant(f"rebalance:{node.node_id}", FLEET_TRACK,
                              now, category="fleet", reason=reason,
                              requeued=len(orphans))
            # Close the spans that died with the node, at its crash
            # instant; their redelivery re-parents onto these.
            died_at = node.crashed_at if node.crashed_at is not None \
                else now
            for _, job in sorted(node.in_flight.items()):
                self.dist.job_killed(job, node.node_id, died_at)
        node.in_flight.clear()
        requeued = 0
        for job in orphans:
            key = job.session_key
            if self.sink.already_recorded(key):
                continue           # its verdict already landed elsewhere
            new_owner_id = self.ring.assign(job.tenant_id)
            if new_owner_id is None:
                self._no_owner.add((job.tenant_id, job.epoch))
                continue
            # Each rebalance re-enqueues an orphan exactly once (a job
            # lives in exactly one queue or in-flight table, so draining
            # both cannot duplicate it); a *cascading* failure may
            # legitimately redeliver the same identity again — that is
            # the at-least-once half, and the idempotent sink is the
            # no-double-verdict half.
            self._requeued.add(key)
            job.ready_ms = max(job.ready_ms, now)
            job.start_ms = job.completion_ms = -1.0
            self.node_by_id[new_owner_id].scheduler.queue.push(job,
                                                              force=True)
            requeued += 1
        self.requeued += requeued
        self._count(labeled("fleet_orphans_requeued_total",
                            node=node.node_id),
                    "Orphaned jobs redelivered after a node death",
                    by=requeued)

        self.rebalances.append(RebalanceEvent(
            time_ms=round(now, 3), node=node.node_id, reason=reason,
            moved_tenants=moved, requeued=requeued,
            killed_in_flight=killed))
        self._maybe_degrade()
        self.tracer.end(f"rebalance:{node.node_id}", moved=len(moved),
                        requeued=requeued)

    def _maybe_degrade(self) -> None:
        alive = len(self.ring)
        if self.registry.enabled:
            self.registry.gauge("fleet_nodes_alive",
                                "Nodes currently on the ring").set(alive)
        if self.degraded_mode:
            return
        if alive / self.topology.num_nodes < self.topology.degrade_below:
            self.degraded_mode = True
            for peer in self.nodes:
                peer.scheduler.spot_only = True
            self.tracer.instant("degraded-mode", category="fleet",
                                alive=alive)
            if self.dist is not None:
                self.dist.instant("degraded-mode", FLEET_TRACK,
                                  self.clock.now_ms, category="fleet",
                                  alive=alive)
            self._count("fleet_degraded_mode_entered_total",
                        "Times the fleet shed to spot-check-only mode")

    # -- work stealing -----------------------------------------------------

    def _steal_pass(self) -> None:
        """Move queued work off suspected or backlogged nodes.

        Deterministic: victims in node order, thieves round-robin over
        healthy nodes in node order.  Stealing moves the job's single
        copy, so no dedup is involved.
        """
        now = self.clock.now_ms
        thieves = [n for n in self.nodes
                   if n.can_dispatch(now) and n.slow_factor == 1.0
                   and not self.detector.node(n.node_id).suspected]
        if not thieves:
            return
        for victim in self.nodes:
            if victim.evicted or victim.crashed_at is not None:
                continue           # rebalance handles the dead
            queue = victim.scheduler.queue
            if self.detector.node(victim.node_id).suspected:
                moved = queue.steal(len(queue))
            elif victim.slow_factor > 1.0 \
                    and len(queue) > self.topology.steal_threshold:
                moved = queue.steal(
                    len(queue) - self.topology.steal_threshold)
            else:
                continue
            for index, job in enumerate(moved):
                thief = thieves[index % len(thieves)]
                job.ready_ms = max(job.ready_ms, now)
                thief.scheduler.queue.push(job, force=True)
                if self.dist is not None:
                    self.dist.steal_hop(job, victim.node_id,
                                        thief.node_id, now)
                self.steals += 1
                self._count(labeled("fleet_steals_total",
                                    node=thief.node_id),
                            "Jobs stolen from silent or backlogged peers")

    # -- dispatch and completion -------------------------------------------

    def _dispatch(self, jobs: int | None) -> bool:
        """Price every queued job on its node; schedule completions."""
        now = self.clock.now_ms
        work: list[tuple[FleetNode, AuditJob]] = []
        for node in self.nodes:
            if self.dist is not None and not node.evicted:
                self.dist.sample_queue_depth(node.node_id, now,
                                             len(node.scheduler.queue))
            if not node.can_dispatch(now):
                continue
            for job in node.scheduler.queue.drain():
                work.append((node, job))
        if not work:
            return False
        prepared = resolve_replays(
            [(node.scheduler, job, self.gate) for node, job in work],
            jobs=jobs)
        for (node, job), p in zip(work, prepared):
            _, completion = node.scheduler.price(job, p, now_ms=now)
            node.in_flight[job.session_key] = job
            if self.dist is not None:
                self.dist.job_dispatched(job, node.node_id)
            self.clock.schedule(completion, "completion", (node, job, p))
        return True

    def _handle_completion(self, payload) -> None:
        node, job, prepared = payload
        if node.evicted:
            return                 # already orphaned and redelivered
        if node.crashed_at is not None \
                and job.completion_ms > node.crashed_at:
            # Died in flight: leave it in in_flight so the coming
            # rebalance redelivers it, and discard the verdict.
            self.killed_in_flight += 1
            self._count(labeled("fleet_killed_in_flight_total",
                                node=node.node_id),
                        "Audits that died with their node")
            return
        node.in_flight.pop(job.session_key, None)
        event = node.scheduler.complete(job, prepared, self.gate)
        if self.dist is not None:
            if event is not None:
                self.dist.job_completed(job, node.node_id, event)
            else:
                self.dist.job_deduped(job, node.node_id)

    # -- reporting ---------------------------------------------------------

    def report(self) -> "FleetReport":
        horizon = max([self.clock.now_ms]
                      + [e.completion_ms for e in self.sink.events])
        verdicted = {(e.tenant_id, e.epoch) for e in self.sink.events}
        unaudited = []
        for tid, epoch in sorted(self._sessions):
            if (tid, epoch) in verdicted:
                continue
            if (tid, epoch) in self._no_owner:
                reason = "no-capacity"
            elif not self.gate.accumulator(tid, epoch).log.entries:
                reason = "no-intact-segments"
            else:
                reason = "audit-shed"
            unaudited.append(UnauditedRecord(tenant_id=tid, epoch=epoch,
                                             reason=reason))
        fleet_obs: dict = {}
        trace_ndjson = ""
        if self.dist is not None:
            last_verdict: dict[tuple, float] = {}
            for event in self.sink.events:
                key = (event.tenant_id, event.epoch)
                last_verdict[key] = max(last_verdict.get(key, 0.0),
                                        event.completion_ms)
            for tid, epoch in sorted(self._sessions):
                end = last_verdict.get((tid, epoch))
                if end is not None:
                    self.dist.session_close(tid, epoch, end, "ok")
                else:
                    self.dist.session_close(tid, epoch, horizon,
                                            "unaudited")
            fleet_obs = self.dist.summary()
            fleet_obs["horizon_ms"] = round(horizon, 3)
            trace_ndjson = self.dist.to_ndjson()
        node_stats = {}
        for node in self.nodes:
            scheduler = node.scheduler
            node_stats[node.node_id] = {
                "status": node.status(self.detector),
                "crashed_at_ms": (round(node.crashed_at, 3)
                                  if node.crashed_at is not None else None),
                "strikes": self.detector.node(node.node_id).strikes,
                "audits": sum(1 for e in self.sink.events
                              if e.node == node.node_id),
                "cache_hits": scheduler.cache.hits,
                "cache_misses": scheduler.cache.misses,
                "utilization": round(scheduler.pool.utilization(horizon), 4),
                "queue": asdict(scheduler.queue.stats),
            }
        return FleetReport(
            seed=self.seed, epochs=self.epochs,
            topology=self.topology.to_json_dict(),
            chaos_spec=self.chaos.spec if self.chaos is not None else "",
            ledgers=dict(self.sink.ledgers),
            node_stats=node_stats,
            rebalances=[r.to_json_dict() for r in self.rebalances],
            unaudited=unaudited,
            degraded_mode=self.degraded_mode,
            killed_in_flight=self.killed_in_flight,
            requeued=self.requeued,
            steals=self.steals,
            deduped=self.sink.deduped,
            cache_hits=self.cache_tier.hits,
            cache_misses=self.cache_tier.misses,
            horizon_ms=horizon,
            segments_shipped=self.segments_shipped,
            sessions_total=len(self._sessions),
            metrics=(self.registry.snapshot()
                     if self.registry.enabled else {}),
            fleet_obs=fleet_obs,
            trace_ndjson=trace_ndjson)

    def _count(self, name: str, help_text: str, by: int = 1) -> None:
        if self.registry.enabled and by:
            self.registry.counter(name, help_text).inc(by)


@dataclass
class FleetReport:
    """The complete, deterministic outcome of one fleet run."""

    seed: int
    epochs: int
    topology: dict
    chaos_spec: str
    ledgers: dict[str, TenantLedger]
    node_stats: dict[str, dict]
    rebalances: list[dict]
    unaudited: list[UnauditedRecord]
    degraded_mode: bool
    killed_in_flight: int
    requeued: int
    steals: int
    deduped: int
    cache_hits: int
    cache_misses: int
    horizon_ms: float
    segments_shipped: int
    sessions_total: int
    metrics: dict = field(default_factory=dict)
    #: :meth:`~repro.obs.dist.DistTracer.summary` payload (latency
    #: stats, heatmap, markers).  Observational only — deliberately NOT
    #: part of :meth:`verdicts_dict`, which the determinism tests
    #: byte-compare with tracing on vs off.
    fleet_obs: dict = field(default_factory=dict)
    #: Structured span/instant event log, one JSON object per line.
    trace_ndjson: str = ""

    @property
    def flagged_tenants(self) -> list[str]:
        return sorted(t for t, l in self.ledgers.items() if l.flagged)

    @property
    def sessions_verdicted(self) -> int:
        return self.sessions_total - len(self.unaudited)

    @property
    def exit_code(self) -> int:
        """CLI contract: 1 flagged > 3 degraded coverage > 0 clean."""
        if self.flagged_tenants:
            return 1
        if self.degraded_mode or self.unaudited:
            return 3
        return 0

    def verdicts_dict(self) -> dict:
        """The canonical payload the determinism tests byte-compare."""
        return {"seed": self.seed,
                "epochs": self.epochs,
                "topology": dict(self.topology),
                "chaos": self.chaos_spec,
                "horizon_ms": round(self.horizon_ms, 3),
                "segments_shipped": self.segments_shipped,
                "sessions_total": self.sessions_total,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "killed_in_flight": self.killed_in_flight,
                "requeued": self.requeued,
                "steals": self.steals,
                "deduped": self.deduped,
                "degraded_mode": self.degraded_mode,
                "rebalances": list(self.rebalances),
                "unaudited": [u.to_json_dict() for u in self.unaudited],
                "nodes": {nid: dict(stats)
                          for nid, stats in sorted(self.node_stats.items())},
                "flagged": self.flagged_tenants,
                "tenants": {tid: ledger.to_json_dict()
                            for tid, ledger in sorted(self.ledgers.items())}}

    # -- rendering ---------------------------------------------------------

    def render_lines(self) -> list[str]:
        topo = self.topology
        lines = [
            f"fleet run: seed={self.seed} epochs={self.epochs} "
            f"nodes={topo['num_nodes']} tenants={len(self.ledgers)} "
            f"chaos={self.chaos_spec or 'none'}",
            f"virtual horizon {self.horizon_ms:.1f} ms; sessions "
            f"{self.sessions_verdicted}/{self.sessions_total} verdicted; "
            f"replay tier {self.cache_hits} hits / {self.cache_misses} "
            f"misses",
            f"chaos: rebalances={len(self.rebalances)} "
            f"requeued={self.requeued} killed_in_flight="
            f"{self.killed_in_flight} steals={self.steals} "
            f"deduped={self.deduped} degraded_mode="
            f"{'yes' if self.degraded_mode else 'no'}",
            "",
            f"{'node':<10} {'status':<12} {'audits':>6} {'hits':>6} "
            f"{'miss':>6} {'util':>7} {'shed':>5}",
        ]
        for nid in sorted(self.node_stats):
            stats = self.node_stats[nid]
            lines.append(
                f"{nid:<10} {stats['status']:<12} {stats['audits']:>6} "
                f"{stats['cache_hits']:>6} {stats['cache_misses']:>6} "
                f"{stats['utilization']:>7.1%} "
                f"{stats['queue']['shed']:>5}")
        lines += [
            "",
            f"{'tenant':<12} {'verdict':<22} {'audits':>6} {'spot':>5} "
            f"{'full':>5} {'escal':>6}",
        ]
        for tid in sorted(self.ledgers):
            ledger = self.ledgers[tid]
            lines.append(
                f"{tid:<12} {ledger.verdict:<22} {ledger.audits:>6} "
                f"{ledger.spot_checks:>5} {ledger.full_audits:>5} "
                f"{ledger.escalations:>6}")
        for rebalance in self.rebalances:
            lines.append(
                f"rebalance @{rebalance['time_ms']:.1f} ms: "
                f"{rebalance['node']} ({rebalance['reason']}) moved "
                f"{len(rebalance['moved_tenants'])} tenants, requeued "
                f"{rebalance['requeued']}")
        for record in self.unaudited:
            lines.append(f"unaudited: {record.tenant_id} epoch "
                         f"{record.epoch} ({record.reason})")
        if self.flagged_tenants:
            lines.append("flagged: " + ", ".join(self.flagged_tenants))
        else:
            lines.append("flagged: none")
        return lines


def persist_fleet_report(runstore, report: FleetReport,
                         label: str = "") -> str:
    """Save a fleet run (kind ``fleet-audit``) to a run store."""
    from repro.obs.runstore import RunRecord

    record = RunRecord(
        kind="fleet-audit", label=label,
        seeds=[report.seed],
        metrics=report.metrics,
        verdicts=report.verdicts_dict(),
        figures={"horizon_ms": report.horizon_ms,
                 "rebalances": len(report.rebalances),
                 "requeued": report.requeued,
                 "unaudited": len(report.unaudited),
                 "nodes": dict(report.node_stats),
                 "fleet_obs": dict(report.fleet_obs)},
        trace_ndjson=report.trace_ndjson)
    return runstore.save(record)

"""Seeded discrete-event clock for the verifier service simulation.

The continuous-audit verifier (§3.2 deployment story) is a long-running
daemon: segments arrive over lossy links at irregular times, audit jobs
queue behind a bounded worker pool, and escalations race deadlines.  A
real daemon would order all of that by wall-clock time — which would make
every run unrepeatable.  The service instead runs on a *simulated*
millisecond clock:

* every event (segment arrival, job dispatch, job completion) carries an
  explicit virtual timestamp derived only from seeded models (transfer
  elapsed time, the audit cost model), never from the host clock;
* ties are broken by a monotonically increasing sequence number assigned
  at push time, so two events at the same virtual instant always pop in
  the order they were scheduled.

The result is the property the determinism tests pin down: a service run
is a pure function of its seed and tenant roster — bit-identical across
hosts, runs, and ``--jobs`` settings.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ReproError


class ServiceError(ReproError):
    """A verifier-service invariant was violated."""


@dataclass(frozen=True)
class SimEvent:
    """One scheduled occurrence on the virtual timeline."""

    time_ms: float
    seq: int
    kind: str
    payload: object = None


class SimClock:
    """Virtual-time event queue with deterministic tie-breaking.

    ``now_ms`` only moves forward, and only by popping events — the
    service never reads the host clock on any code path that feeds a
    verdict or a metric.
    """

    def __init__(self) -> None:
        self.now_ms = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, SimEvent]] = []

    def schedule(self, time_ms: float, kind: str,
                 payload: object = None) -> SimEvent:
        """Add an event at ``time_ms`` (>= now); returns it."""
        if time_ms < self.now_ms:
            raise ServiceError(
                f"cannot schedule '{kind}' at {time_ms:.3f} ms; the "
                f"clock already reads {self.now_ms:.3f} ms")
        event = SimEvent(time_ms, self._seq, kind, payload)
        self._seq += 1
        heapq.heappush(self._heap, (time_ms, event.seq, event))
        return event

    def pop(self) -> SimEvent:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise ServiceError("pop from an empty event queue")
        _, _, event = heapq.heappop(self._heap)
        self.now_ms = event.time_ms
        return event

    def advance_to(self, time_ms: float) -> None:
        """Move the clock forward to ``time_ms`` without an event."""
        if time_ms < self.now_ms:
            raise ServiceError(
                f"clock cannot run backwards: {time_ms:.3f} < "
                f"{self.now_ms:.3f}")
        self.now_ms = time_ms

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass
class WorkerPool:
    """Virtual-time model of ``num_workers`` audit workers.

    Assignment is deterministic: a job goes to the worker that frees up
    earliest, ties broken by the lowest worker index.  Busy time is
    accumulated per worker so the report can state utilization.
    """

    num_workers: int
    free_at_ms: list[float] = field(default_factory=list)
    busy_ms: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ServiceError(
                f"worker pool needs >= 1 worker, got {self.num_workers}")
        if not self.free_at_ms:
            self.free_at_ms = [0.0] * self.num_workers
            self.busy_ms = [0.0] * self.num_workers

    def assign(self, ready_ms: float, service_ms: float
               ) -> tuple[int, float, float]:
        """Place one job; returns ``(worker, start_ms, completion_ms)``."""
        worker = min(range(self.num_workers),
                     key=lambda w: (self.free_at_ms[w], w))
        start = max(ready_ms, self.free_at_ms[worker])
        completion = start + service_ms
        self.free_at_ms[worker] = completion
        self.busy_ms[worker] += service_ms
        return worker, start, completion

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of worker-time busy over ``[0, horizon_ms]``."""
        if horizon_ms <= 0:
            return 0.0
        total = self.num_workers * horizon_ms
        return min(1.0, sum(self.busy_ms) / total)

"""Prover-side sessions: executions become hash-chained segment streams.

A tenant of the verifier service is a *prover session*: a long-running
machine whose event log must reach the auditor continuously, not as one
monolithic blob at shutdown.  Per epoch the session

1. runs one machine execution (described as a picklable
   :class:`~repro.analysis.parallel.MachineSpec`, so the service can fan
   epochs out over the experiment fleet),
2. splits the recorded log into contiguous *segments*, folding every
   entry into a PeerReview-style hash chain
   (:class:`~repro.core.attestation.LogAttestor`) and stamping each
   segment with a signed authenticator over the cumulative prefix, and
3. ships each segment over the lossy
   :class:`~repro.faults.channel.LogTransferChannel` with retry/backoff —
   a degraded link delivers a contiguous prefix of the chunk, exactly
   what the salvage replay knows how to audit.

The covert tenant follows the §5 threat model: it injects a channel
schedule (IPCTC/TRCTC delays via the ``covert_delay`` primitive) during
play but ships an *honest* log — the log records inputs, not the delays,
which is precisely why time-deterministic replay exposes the channel.
A tampering tenant instead rewrites a shipped entry after attesting it,
which the admission chain check catches before any replay is spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.experiment import NfsTrafficModel, vm_covert_schedule
from repro.analysis.parallel import MachineSpec
from repro.channels import channel_by_name
from repro.channels.codec import random_bits
from repro.core.attestation import Authenticator, LogAttestor
from repro.core.log import EventKind, EventLog, LogEntry
from repro.determinism import SplitMix64, hash_string, mix64
from repro.faults.channel import LogTransferChannel, TransferOutcome
from repro.machine.config import MachineConfig
from repro.machine.machine import ExecutionResult
from repro.service.simclock import ServiceError

#: Adversary's calibration-sample size (profiled legitimate IPDs).
_ADVERSARY_SAMPLE = 240


@dataclass(frozen=True)
class TenantSpec:
    """Static description of one tenant admitted to the service."""

    tenant_id: str
    program: str = "kvstore"          #: MachineSpec symbolic program ref
    workload: str = "kvstore"         #: workload kind ("nfs"/"kvstore")
    requests: int = 6
    seed: int = 0
    #: Covert-channel name ("ipctc"/"trctc"/...) — None for honest tenants.
    covert_channel: str | None = None
    covert_bits: int = 4
    #: Loss probability of this tenant's uplink to the verifier.
    drop_rate: float = 0.0
    #: Rewrite a shipped log entry after attesting it (tamper scenario).
    tamper: bool = False
    #: Log segments shipped per epoch.
    segments: int = 3

    def __post_init__(self) -> None:
        if self.segments < 1:
            raise ServiceError(
                f"tenant '{self.tenant_id}': needs >= 1 segment per "
                f"epoch, got {self.segments}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ServiceError(
                f"tenant '{self.tenant_id}': drop rate must be in "
                f"[0, 1), got {self.drop_rate}")

    @property
    def signing_key(self) -> bytes:
        """Per-tenant attestation key (simulation stand-in for a real
        per-machine signing key)."""
        return f"svc-attest-{self.tenant_id}".encode()


@dataclass(frozen=True)
class WireObservation:
    """What the verifier itself saw on the wire (its trusted vantage).

    Duck-types the slice of :class:`ExecutionResult` the audit comparison
    needs (``tx`` + ``tx_times_ms``) while staying small and picklable.
    """

    tx: tuple[tuple[int, bytes], ...]
    times_ms: tuple[float, ...]
    instructions: int
    total_cycles: int

    @classmethod
    def from_result(cls, result: ExecutionResult) -> "WireObservation":
        return cls(tx=tuple(result.tx),
                   times_ms=tuple(result.tx_times_ms()),
                   instructions=result.instructions,
                   total_cycles=result.total_cycles)

    def tx_times_ms(self) -> list[float]:
        return list(self.times_ms)


@dataclass(frozen=True)
class SegmentShipment:
    """One log segment as it arrives at the verifier's front door."""

    tenant_id: str
    epoch: int
    seq: int                      #: segment index within the epoch
    total_segments: int
    chunk_bytes: bytes            #: serialized entries of this segment
    #: Signed commitment to the *cumulative* log prefix ending with this
    #: segment (chain state carries across segments within an epoch).
    auth: Authenticator
    sent_ms: float
    arrival_ms: float
    transfer: TransferOutcome

    @property
    def degraded(self) -> bool:
        return self.transfer.degraded


@dataclass
class EpochShipment:
    """Everything one tenant-epoch puts on the verifier's doorstep."""

    tenant_id: str
    epoch: int
    wire: WireObservation
    shipments: list[SegmentShipment] = field(default_factory=list)
    log_entries: int = 0          #: entries the prover's log really held


def _chunk_bounds(n_entries: int, segments: int) -> list[tuple[int, int]]:
    """Split ``n_entries`` into ``segments`` contiguous chunks.

    Early chunks take the remainder, so every chunk is non-empty whenever
    ``n_entries >= segments``; with fewer entries than segments the tail
    chunks are empty (they still ship, carrying the chain commitment).
    """
    base, extra = divmod(n_entries, segments)
    bounds = []
    start = 0
    for i in range(segments):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def _entries_to_bytes(entries: list[LogEntry]) -> bytes:
    chunk_log = EventLog()
    chunk_log.entries = list(entries)
    return chunk_log.to_bytes()


class ProverSession:
    """One tenant's machine, log chain, and uplink."""

    def __init__(self, spec: TenantSpec, config: MachineConfig | None = None,
                 service_seed: int = 0,
                 segment_interval_ms: float = 40.0,
                 mtu_bytes: int = 256, max_retries: int = 4) -> None:
        self.spec = spec
        self.config = config or MachineConfig()
        self.service_seed = service_seed
        self.segment_interval_ms = segment_interval_ms
        self.channel = LogTransferChannel(drop_rate=spec.drop_rate,
                                          mtu_bytes=mtu_bytes,
                                          max_retries=max_retries)
        self._covert_schedules: dict[int, tuple[int, ...]] = {}

    # -- deterministic seed derivations -----------------------------------

    def _rng(self, label: str) -> SplitMix64:
        return SplitMix64(mix64(self.service_seed)
                          ^ hash_string(f"{self.spec.tenant_id}:{label}"))

    def play_seed(self, epoch: int) -> int:
        return (mix64(self.spec.seed ^ hash_string(
            f"play:{self.spec.tenant_id}:{epoch}"))) % (1 << 31)

    def workload_seed(self, epoch: int) -> int:
        return (mix64(self.spec.seed ^ hash_string(
            f"workload:{self.spec.tenant_id}:{epoch}"))) % (1 << 31)

    # -- covert schedule ---------------------------------------------------

    def covert_schedule(self, epoch: int) -> tuple[int, ...] | None:
        """The epoch's ``covert_delay`` schedule (cycles), or None.

        The adversary profiles legitimate traffic once (the calibrated
        synthetic model), then encodes a fresh payload per epoch.  Delays
        are clamped non-negative by the channel encoder; the schedule is
        cached so repeated spec builds stay cheap and identical.
        """
        if self.spec.covert_channel is None:
            return None
        cached = self._covert_schedules.get(epoch)
        if cached is not None:
            return cached
        rng = self._rng(f"covert:{epoch}")
        channel = channel_by_name(self.spec.covert_channel)
        model = NfsTrafficModel()
        channel.fit(model.ipds(_ADVERSARY_SAMPLE, rng.fork("adversary")),
                    rng.fork("fit"))
        natural = model.ipds(self.spec.requests, rng.fork("natural"))
        bits = random_bits(max(1, self.spec.covert_bits), rng.fork("bits"))
        schedule = tuple(vm_covert_schedule(
            channel, natural, bits, rng.fork("encode"),
            frequency_hz=self.config.frequency_hz))
        self._covert_schedules[epoch] = schedule
        return schedule

    # -- play --------------------------------------------------------------

    def play_spec(self, epoch: int) -> MachineSpec:
        """The epoch's execution, as a fleet-dispatchable spec."""
        return MachineSpec(
            program=self.spec.program,
            config=self.config,
            seed=self.play_seed(epoch),
            workload=(f"{self.spec.workload}:{self.workload_seed(epoch)}"
                      f":{self.spec.requests}"),
            covert_schedule=self.covert_schedule(epoch))

    # -- segmentation + attestation + shipping -----------------------------

    def ship(self, epoch: int, result: ExecutionResult,
             epoch_start_ms: float) -> EpochShipment:
        """Attest and transfer the epoch's log as a segment stream."""
        if result.log is None:
            raise ServiceError(
                f"tenant '{self.spec.tenant_id}' epoch {epoch}: play "
                f"produced no log to ship")
        entries = result.log.entries
        bounds = _chunk_bounds(len(entries), self.spec.segments)

        attestor = LogAttestor(self.spec.signing_key)
        rng = self._rng(f"ship:{epoch}")
        shipments: list[SegmentShipment] = []
        tampered = False
        for seq, (start, end) in enumerate(bounds):
            chunk_entries = list(entries[start:end])
            # The chain commits to the *honest* entries first; a tamperer
            # rewrites what it ships afterwards, which is exactly the
            # history-rewriting the admission chain check must catch.
            for entry in chunk_entries:
                attestor.extend(entry)
            auth = attestor.authenticator()
            if self.spec.tamper and not tampered:
                victim = next((i for i, e in enumerate(chunk_entries)
                               if e.kind == EventKind.PACKET
                               and e.payload), None)
                if victim is not None:
                    original = chunk_entries[victim]
                    forged = bytes([original.payload[0] ^ 0x01]) \
                        + original.payload[1:]
                    chunk_entries[victim] = LogEntry(
                        original.kind, original.instr_count,
                        payload=forged, value=original.value)
                    tampered = True
            chunk_bytes = _entries_to_bytes(chunk_entries)
            transfer = self.channel.transfer(
                chunk_bytes, rng.fork(f"xfer:{seq}"))
            sent_ms = epoch_start_ms + (seq + 1) * self.segment_interval_ms
            shipments.append(SegmentShipment(
                tenant_id=self.spec.tenant_id, epoch=epoch, seq=seq,
                total_segments=self.spec.segments,
                chunk_bytes=transfer.data, auth=auth,
                sent_ms=sent_ms,
                arrival_ms=sent_ms + transfer.elapsed_ms,
                transfer=transfer))
        return EpochShipment(tenant_id=self.spec.tenant_id, epoch=epoch,
                             wire=WireObservation.from_result(result),
                             shipments=shipments,
                             log_entries=len(entries))

"""Admission control: verify before you enqueue, enqueue before you replay.

Replay is the expensive resource of the verifier service, so the ingest
layer spends the cheap checks first, PeerReview-style:

1. **Framing / CRC** — the chunk bytes are parsed tolerantly
   (:meth:`EventLog.parse_prefix`); a degraded transfer delivers a
   contiguous prefix whose intact entries are still usable.
2. **Chain** — the cumulative per-tenant log (all admitted entries of the
   epoch plus this chunk's intact entries) is checked against the
   segment's signed authenticator.  A mismatch is *proof* of tampering —
   the entries on hand are not the ones the machine committed to — and
   short-circuits straight to escalation without any replay.
3. **Gap discipline** — once a chunk is damaged or lost, later chunks of
   the same epoch are quarantined rather than appended: splicing entries
   after a gap would produce a log the chain can never match, and a
   fabricated "tamper" verdict for what is really transfer damage.

The accumulator owns the verifier-side copy of each tenant-epoch's log;
schedulable audit work only ever sees entries that came through here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.attestation import LogVerifier
from repro.core.log import EventLog
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service.session import SegmentShipment, TenantSpec


class AdmissionStatus(str, enum.Enum):
    """What the ingest gate concluded about one segment."""

    ADMITTED = "admitted"              #: intact, chain-consistent
    DEGRADED = "degraded"              #: damage truncated the chunk
    QUARANTINED = "quarantined"        #: after a gap; cannot be chained
    TAMPER = "tamper"                  #: chain mismatch on intact entries


@dataclass
class AdmissionRecord:
    """Outcome of admitting one segment shipment."""

    shipment: SegmentShipment
    status: AdmissionStatus
    intact_entries: int                #: entries salvaged from this chunk
    accumulated_entries: int           #: verifier-side log length after
    #: Chain verdict: True ok, False tamper, None inconclusive (the
    #: authenticator covers entries the damage removed).
    chain_ok: bool | None
    detail: str = ""


@dataclass
class EpochAccumulator:
    """The verifier's copy of one tenant-epoch's log, grown chunk by chunk."""

    tenant_id: str
    epoch: int
    log: EventLog = field(default_factory=EventLog)
    segments_seen: int = 0
    segments_admitted: int = 0
    gap: bool = False                  #: a chunk was damaged or lost
    tampered: bool = False
    #: Wire-observed transmissions audited so far (set by the scheduler).
    last_audited_entries: int = 0


class IngestGate:
    """Per-tenant admission: CRC + chain checks, then enqueue."""

    def __init__(self, tenants: dict[str, TenantSpec],
                 registry: MetricsRegistry | None = None) -> None:
        self._verifiers = {tid: LogVerifier(spec.signing_key)
                           for tid, spec in tenants.items()}
        self.registry = registry if registry is not None else get_registry()
        self._accumulators: dict[tuple[str, int], EpochAccumulator] = {}

    def accumulator(self, tenant_id: str, epoch: int) -> EpochAccumulator:
        key = (tenant_id, epoch)
        acc = self._accumulators.get(key)
        if acc is None:
            acc = EpochAccumulator(tenant_id=tenant_id, epoch=epoch)
            self._accumulators[key] = acc
        return acc

    def admit(self, shipment: SegmentShipment) -> AdmissionRecord:
        """Run the cheap checks; grow the accumulator; classify."""
        acc = self.accumulator(shipment.tenant_id, shipment.epoch)
        acc.segments_seen += 1
        verifier = self._verifiers[shipment.tenant_id]

        parse = EventLog.parse_prefix(shipment.chunk_bytes)
        damaged = shipment.degraded or not parse.complete
        intact = parse.log.entries[:parse.intact_entries]

        if acc.gap:
            # Entries after a gap cannot extend the chained prefix.
            record = AdmissionRecord(
                shipment, AdmissionStatus.QUARANTINED,
                intact_entries=len(intact),
                accumulated_entries=len(acc.log.entries),
                chain_ok=None,
                detail="a prior segment of this epoch was damaged; the "
                       "chain cannot be extended past the gap")
            self._count(record)
            return record

        acc.log.entries.extend(intact)
        chain_ok = verifier.verify_available_prefix(acc.log, shipment.auth)
        if chain_ok is False:
            acc.tampered = True
            acc.gap = True            # nothing after proof of tampering
            record = AdmissionRecord(
                shipment, AdmissionStatus.TAMPER,
                intact_entries=len(intact),
                accumulated_entries=len(acc.log.entries),
                chain_ok=False,
                detail="attestation chain mismatch: the delivered entries "
                       "are not the ones the machine committed to")
            self._count(record)
            return record

        if damaged:
            acc.gap = True
            status = AdmissionStatus.DEGRADED
            detail = (f"transfer delivered "
                      f"{shipment.transfer.frames_delivered}/"
                      f"{shipment.transfer.total_frames} frames; "
                      f"{len(intact)} intact entries salvaged")
        else:
            acc.segments_admitted += 1
            status = AdmissionStatus.ADMITTED
            detail = (f"segment {shipment.seq + 1}/"
                      f"{shipment.total_segments} chained at "
                      f"{len(acc.log.entries)} entries")
        record = AdmissionRecord(
            shipment, status, intact_entries=len(intact),
            accumulated_entries=len(acc.log.entries),
            chain_ok=chain_ok, detail=detail)
        self._count(record)
        return record

    def _count(self, record: AdmissionRecord) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        registry.counter("service_segments_ingested_total",
                         "Segment shipments presented to admission").inc()
        slug = record.status.value
        registry.counter(f"service_segments_{slug}_total",
                         f"Segments classified {slug} at admission").inc()
        registry.counter(
            "service_ingest_bytes_total",
            "Chunk bytes received (post-transfer)").inc(
            len(record.shipment.chunk_bytes))

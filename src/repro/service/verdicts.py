"""Per-tenant verdict ledgers and the service run report.

Every audit the scheduler completes lands here as an immutable
:class:`AuditEvent`.  The :class:`VerdictSink` folds events into
per-tenant :class:`TenantLedger` rows and the service-level metrics
(queue latency, audits by kind, deadline misses); the
:class:`ServiceReport` renders the CLI tables and carries the exact
dictionary the determinism tests compare across runs and ``--jobs``
settings — so everything in it is derived from virtual time and seeded
replay, never the host clock.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.core.resilience import AuditClassification
from repro.obs.metrics import MetricsRegistry, get_registry

_FLAGGED = ("flagged-covert", "flagged-tamper", "flagged-divergent")


@dataclass(frozen=True)
class AuditEvent:
    """One completed audit job, fully judged."""

    tenant_id: str
    epoch: int
    kind: str                     #: "spot" | "full" | "escalated"
    cause: str
    classification: AuditClassification
    consistent: bool | None
    coverage: float               #: fraction of wire tx the audit checked
    matched_tx: int
    total_tx: int
    tenant_status: str            #: state-machine status after this audit
    queue_latency_ms: float
    service_ms: float
    worker: int
    start_ms: float
    completion_ms: float
    missed_deadline: bool
    cache_hit: bool
    max_rel_ipd_diff: float
    detail: str = ""
    node: str = ""                #: fleet node that judged it ("" = single)

    @property
    def dedup_key(self) -> tuple:
        """Identity for idempotent recording under at-least-once dispatch."""
        return (self.tenant_id, self.epoch, self.kind, self.cause)

    def to_json_dict(self) -> dict:
        data = asdict(self)
        data["classification"] = self.classification.value
        return data


@dataclass(frozen=True)
class UnauditedRecord:
    """A session the fleet explicitly could not audit — never a silent drop.

    The fleet's terminal invariant: every ingested (tenant, epoch)
    session ends in a verdict *or* one of these, with the reason the
    capacity was lost ("no-capacity", "audit-shed", ...).
    """

    tenant_id: str
    epoch: int
    reason: str

    def to_json_dict(self) -> dict:
        return asdict(self)


@dataclass
class TenantLedger:
    """Everything the service concluded about one tenant."""

    tenant_id: str
    events: list[AuditEvent] = field(default_factory=list)
    final_status: str = "normal"

    def add(self, event: AuditEvent) -> None:
        self.events.append(event)
        self.final_status = event.tenant_status

    # -- derived counts ----------------------------------------------------

    def _count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def audits(self) -> int:
        return len(self.events)

    @property
    def spot_checks(self) -> int:
        return self._count("spot")

    @property
    def full_audits(self) -> int:
        return self._count("full")

    @property
    def escalations(self) -> int:
        return self._count("escalated")

    @property
    def anomalies(self) -> int:
        return sum(1 for e in self.events if e.classification in
                   (AuditClassification.REPLAY_DIVERGENT,
                    AuditClassification.TAMPER_DETECTED))

    @property
    def degraded_audits(self) -> int:
        return sum(1 for e in self.events if e.classification
                   == AuditClassification.TRANSFER_DEGRADED)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.cache_hit)

    @property
    def deadline_misses(self) -> int:
        return sum(1 for e in self.events if e.missed_deadline)

    @property
    def mean_queue_latency_ms(self) -> float:
        if not self.events:
            return 0.0
        return sum(e.queue_latency_ms for e in self.events) / len(self.events)

    @property
    def max_queue_latency_ms(self) -> float:
        return max((e.queue_latency_ms for e in self.events), default=0.0)

    @property
    def flagged(self) -> bool:
        return self.final_status in _FLAGGED

    @property
    def verdict(self) -> str:
        """The one-word answer the report table prints."""
        if self.final_status == "flagged-covert":
            return "FLAGGED covert-timing"
        if self.final_status == "flagged-tamper":
            return "FLAGGED tamper"
        if self.final_status == "flagged-divergent":
            return "FLAGGED divergent"
        if self.final_status == "suspect":
            return "suspect"
        if self.degraded_audits:
            return "clean (degraded link)"
        return "clean"

    def to_json_dict(self) -> dict:
        return {"tenant_id": self.tenant_id,
                "verdict": self.verdict,
                "final_status": self.final_status,
                "audits": self.audits,
                "spot_checks": self.spot_checks,
                "full_audits": self.full_audits,
                "escalations": self.escalations,
                "anomalies": self.anomalies,
                "degraded_audits": self.degraded_audits,
                "cache_hits": self.cache_hits,
                "deadline_misses": self.deadline_misses,
                "mean_queue_latency_ms": round(self.mean_queue_latency_ms, 3),
                "max_queue_latency_ms": round(self.max_queue_latency_ms, 3),
                "events": [e.to_json_dict() for e in self.events]}


class VerdictSink:
    """Collects audit events into ledgers and service metrics.

    With ``dedupe=True`` the sink is idempotent on
    :attr:`AuditEvent.dedup_key`: the fleet's rebalance path delivers
    jobs at least once, and the second verdict for the same (tenant,
    epoch, kind, cause) is counted and discarded rather than double-
    booked.  The single-node service keeps exact-once dispatch and the
    default off.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 dedupe: bool = False) -> None:
        self.registry = registry if registry is not None else get_registry()
        self.ledgers: dict[str, TenantLedger] = {}
        self.events: list[AuditEvent] = []
        self.dedupe = dedupe
        self.deduped = 0
        self._seen_keys: set[tuple] = set()

    def already_recorded(self, key: tuple) -> bool:
        """Whether a verdict with this dedup key has landed (dedupe mode)."""
        return key in self._seen_keys

    def count_duplicate(self) -> None:
        """Book a redelivered job that was skipped before judgement."""
        self.deduped += 1
        if self.registry.enabled:
            self.registry.counter(
                "service_verdicts_deduped_total",
                "Duplicate verdicts discarded by idempotent "
                "recording").inc()

    def record(self, event: AuditEvent) -> bool:
        """Fold one event in; False when dedup discarded a duplicate."""
        if self.dedupe:
            key = event.dedup_key
            if key in self._seen_keys:
                self.count_duplicate()
                return False
            self._seen_keys.add(key)
        self.events.append(event)
        ledger = self.ledgers.get(event.tenant_id)
        if ledger is None:
            ledger = TenantLedger(tenant_id=event.tenant_id)
            self.ledgers[event.tenant_id] = ledger
        ledger.add(event)
        registry = self.registry
        if not registry.enabled:
            return True
        registry.counter("service_audits_total",
                         "Audit jobs completed by the verifier").inc()
        registry.counter(f"service_audits_{event.kind}_total",
                         f"{event.kind} audits completed").inc()
        registry.histogram(
            "service_queue_latency_ms",
            "Job wait between ready and dispatch (virtual ms)",
            buckets=(1.0, 5.0, 20.0, 50.0, 200.0, 1000.0)).observe(
            event.queue_latency_ms)
        registry.histogram(
            "service_audit_service_ms",
            "Audit service time under the virtual cost model (ms)",
            buckets=(2.0, 10.0, 50.0, 200.0, 1000.0, 5000.0)).observe(
            event.service_ms)
        if event.missed_deadline:
            registry.counter("service_deadline_misses_total",
                             "Audits completed after their SLO deadline"
                             ).inc()
        return True


@dataclass
class ServiceReport:
    """The complete, deterministic outcome of one service run."""

    seed: int
    epochs: int
    ledgers: dict[str, TenantLedger]
    queue_stats: dict
    utilization: float
    num_workers: int
    cache_hits: int
    cache_misses: int
    horizon_ms: float             #: virtual time at which the run ended
    segments_shipped: int = 0
    metrics: dict = field(default_factory=dict)

    @property
    def flagged_tenants(self) -> list[str]:
        return sorted(t for t, l in self.ledgers.items() if l.flagged)

    @property
    def exit_code(self) -> int:
        """Non-zero when any tenant ended flagged — the CLI contract."""
        return 1 if self.flagged_tenants else 0

    def verdicts_dict(self) -> dict:
        """The canonical comparison payload for the determinism tests."""
        return {"seed": self.seed,
                "epochs": self.epochs,
                "horizon_ms": round(self.horizon_ms, 3),
                "utilization": round(self.utilization, 4),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "segments_shipped": self.segments_shipped,
                "queue": dict(self.queue_stats),
                "flagged": self.flagged_tenants,
                "tenants": {tid: ledger.to_json_dict()
                            for tid, ledger in sorted(self.ledgers.items())}}

    # -- rendering ---------------------------------------------------------

    def render_lines(self) -> list[str]:
        lines = [
            f"service run: seed={self.seed} epochs={self.epochs} "
            f"tenants={len(self.ledgers)} workers={self.num_workers}",
            f"virtual horizon {self.horizon_ms:.1f} ms; worker utilization "
            f"{self.utilization:.1%}; replay cache {self.cache_hits} hits / "
            f"{self.cache_misses} misses",
            "",
            f"{'tenant':<12} {'verdict':<22} {'audits':>6} {'spot':>5} "
            f"{'full':>5} {'escal':>6} {'anom':>5} {'degr':>5}",
        ]
        for tid in sorted(self.ledgers):
            ledger = self.ledgers[tid]
            lines.append(
                f"{tid:<12} {ledger.verdict:<22} {ledger.audits:>6} "
                f"{ledger.spot_checks:>5} {ledger.full_audits:>5} "
                f"{ledger.escalations:>6} {ledger.anomalies:>5} "
                f"{ledger.degraded_audits:>5}")
        queue = self.queue_stats
        lines += [
            "",
            f"{'tenant':<12} {'mean wait ms':>12} {'max wait ms':>12} "
            f"{'cache hits':>10} {'SLO miss':>8}",
        ]
        for tid in sorted(self.ledgers):
            ledger = self.ledgers[tid]
            lines.append(
                f"{tid:<12} {ledger.mean_queue_latency_ms:>12.3f} "
                f"{ledger.max_queue_latency_ms:>12.3f} "
                f"{ledger.cache_hits:>10} {ledger.deadline_misses:>8}")
        lines += [
            "",
            f"queue: pushed={queue.get('pushed', 0)} "
            f"popped={queue.get('popped', 0)} shed={queue.get('shed', 0)} "
            f"refused={queue.get('refused', 0)} "
            f"peak_depth={queue.get('peak_depth', 0)}",
        ]
        if self.flagged_tenants:
            lines.append("flagged: " + ", ".join(self.flagged_tenants))
        else:
            lines.append("flagged: none")
        return lines

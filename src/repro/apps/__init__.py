"""Guest applications (MiniJ sources) and their workload drivers.

* :mod:`repro.apps.nfs` — the mini NFS file server (the paper's ``nfsj``
  stand-in, §6.4/§6.6) plus its client workload builder;
* :mod:`repro.apps.scimark` — the five SciMark-like kernels (§6.2/§6.3);
* :mod:`repro.apps.microbench` — the array-zeroing microbenchmark (§2.4).
"""

from repro.apps.kvstore import (KV_SHUTDOWN, build_kvstore_program,
                                build_kvstore_workload,
                                kvstore_server_source)
from repro.apps.microbench import zero_array_source
from repro.apps.nfs import (NFS_SHUTDOWN, build_nfs_program,
                            build_nfs_workload, nfs_server_source)
from repro.apps.scimark import (SCIMARK_KERNELS, build_kernel_program,
                                kernel_source)

__all__ = [
    "KV_SHUTDOWN",
    "NFS_SHUTDOWN",
    "SCIMARK_KERNELS",
    "build_kernel_program",
    "build_kvstore_program",
    "build_kvstore_workload",
    "build_nfs_program",
    "build_nfs_workload",
    "compile_app",
    "kernel_source",
    "kvstore_server_source",
    "nfs_server_source",
    "zero_array_source",
]


def compile_app(source: str, entry: str = "main"):
    """Compile a MiniJ guest against the machine's native interface."""
    from repro.lang import compile_minij
    from repro.machine.natives import (MACHINE_NATIVE_SIGNATURES,
                                       MACHINE_REGISTRY)

    return compile_minij(source, natives=MACHINE_REGISTRY,
                         native_signatures=MACHINE_NATIVE_SIGNATURES,
                         entry=entry)

"""SciMark-like computational kernels in MiniJ (§6.2-§6.3, Table 2/Fig 6).

The five kernels of NIST's SciMark 2.0, re-implemented for the Sanity VM
at reduced problem sizes:

* **FFT** — radix-2 complex fast Fourier transform;
* **SOR** — Jacobi successive over-relaxation on a square grid;
* **MC**  — Monte Carlo integration of pi (in-guest LCG);
* **SMM** — sparse matrix-vector multiply (compressed-row layout);
* **LU**  — dense LU factorization with partial pivoting.

Each kernel's ``main`` runs the computation and prints an integer
checksum, so functional correctness is testable independent of timing.
"""

from __future__ import annotations

from repro.errors import ReproError


def _fft_source(n: int, iterations: int) -> str:
    if n & (n - 1) or n < 4:
        raise ReproError(f"FFT size must be a power of two >= 4: {n}")
    return f"""
    global int checksum;

    void fft(float[] re, float[] im, int n) {{
        // Bit-reversal permutation.
        int j = 0;
        for (int i = 0; i < n - 1; i = i + 1) {{
            if (i < j) {{
                float tr = re[i]; re[i] = re[j]; re[j] = tr;
                float ti = im[i]; im[i] = im[j]; im[j] = ti;
            }}
            int k = n / 2;
            while (k <= j) {{ j = j - k; k = k / 2; }}
            j = j + k;
        }}
        // Butterfly stages.
        int dual = 1;
        while (dual < n) {{
            for (int b = 0; b < dual; b = b + 1) {{
                float angle = 0.0 - (3.141592653589793 * itof(b))
                              / itof(dual);
                float wr = cos(angle);
                float wi = sin(angle);
                for (int a = b; a < n; a = a + 2 * dual) {{
                    int hi = a + dual;
                    float tr = wr * re[hi] - wi * im[hi];
                    float ti = wr * im[hi] + wi * re[hi];
                    re[hi] = re[a] - tr;
                    im[hi] = im[a] - ti;
                    re[a] = re[a] + tr;
                    im[a] = im[a] + ti;
                }}
            }}
            dual = dual * 2;
        }}
    }}

    void main() {{
        float[] re = new float[{n}];
        float[] im = new float[{n}];
        for (int it = 0; it < {iterations}; it = it + 1) {{
            int seed = 12345 + it;
            for (int i = 0; i < {n}; i = i + 1) {{
                seed = (seed * 1103515245 + 12345) % 2147483648;
                re[i] = itof(seed % 1000) / 1000.0;
                im[i] = 0.0;
            }}
            fft(re, im, {n});
            checksum = checksum + ftoi(re[{n} / 2] * 1000.0);
        }}
        print_int(checksum);
        exit();
    }}
    """


def _sor_source(n: int, iterations: int) -> str:
    return f"""
    void main() {{
        float[] grid = new float[{n * n}];
        int seed = 42;
        for (int i = 0; i < {n * n}; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483648;
            grid[i] = itof(seed % 1000) / 1000.0;
        }}
        float omega = 1.25;
        float factor = omega * 0.25;
        float keep = 1.0 - omega;
        for (int it = 0; it < {iterations}; it = it + 1) {{
            for (int i = 1; i < {n} - 1; i = i + 1) {{
                for (int j = 1; j < {n} - 1; j = j + 1) {{
                    int idx = i * {n} + j;
                    grid[idx] = factor * (grid[idx - {n}] + grid[idx + {n}]
                                + grid[idx - 1] + grid[idx + 1])
                                + keep * grid[idx];
                }}
            }}
        }}
        print_int(ftoi(grid[{n} * {n} / 2 + {n} / 2] * 100000.0));
        exit();
    }}
    """


def _mc_source(samples: int) -> str:
    return f"""
    void main() {{
        int seed = 987654321;
        int inside = 0;
        for (int i = 0; i < {samples}; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) & 2147483647;
            float x = itof(seed & 65535) / 65536.0;
            seed = (seed * 1103515245 + 12345) & 2147483647;
            float y = itof(seed & 65535) / 65536.0;
            if (x * x + y * y <= 1.0) {{
                inside = inside + 1;
            }}
        }}
        // 4 * inside / samples ~= pi; print scaled estimate.
        print_int((4000 * inside) / {samples});
        exit();
    }}
    """


def _smm_source(n: int, nonzeros_per_row: int, iterations: int) -> str:
    return f"""
    void main() {{
        int nz = {n} * {nonzeros_per_row};
        float[] values = new float[nz];
        int[] columns = new int[nz];
        int[] row_start = new int[{n} + 1];
        float[] x = new float[{n}];
        float[] y = new float[{n}];
        int seed = 1337;
        for (int i = 0; i < {n}; i = i + 1) {{
            row_start[i] = i * {nonzeros_per_row};
            x[i] = itof(i + 1) / itof({n});
            for (int k = 0; k < {nonzeros_per_row}; k = k + 1) {{
                int e = i * {nonzeros_per_row} + k;
                seed = (seed * 1103515245 + 12345) % 2147483648;
                columns[e] = seed % {n};
                values[e] = itof(seed % 1000) / 1000.0;
            }}
        }}
        row_start[{n}] = nz;
        float checksum = 0.0;
        for (int it = 0; it < {iterations}; it = it + 1) {{
            for (int i = 0; i < {n}; i = i + 1) {{
                float total = 0.0;
                int stop = row_start[i + 1];
                for (int e = row_start[i]; e < stop; e = e + 1) {{
                    total = total + values[e] * x[columns[e]];
                }}
                y[i] = total;
            }}
            checksum = checksum + y[{n} / 2];
            // Mild feedback keeps iterations data-dependent without
            // driving the vector to zero.
            for (int i = 0; i < {n}; i = i + 1) {{
                x[i] = 0.5 * x[i] + y[i] / itof({nonzeros_per_row});
            }}
        }}
        print_int(ftoi(checksum * 100000.0));
        exit();
    }}
    """


def _lu_source(n: int) -> str:
    return f"""
    void main() {{
        float[] a = new float[{n * n}];
        int seed = 24680;
        for (int i = 0; i < {n * n}; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483648;
            a[i] = itof(seed % 2000 - 1000) / 1000.0;
        }}
        // Diagonal dominance keeps the factorization well-conditioned.
        for (int i = 0; i < {n}; i = i + 1) {{
            a[i * {n} + i] = a[i * {n} + i] + itof({n});
        }}
        for (int k = 0; k < {n} - 1; k = k + 1) {{
            // Partial pivoting.
            int pivot = k;
            float best = a[k * {n} + k];
            if (best < 0.0) {{ best = 0.0 - best; }}
            for (int i = k + 1; i < {n}; i = i + 1) {{
                float v = a[i * {n} + k];
                if (v < 0.0) {{ v = 0.0 - v; }}
                if (v > best) {{ best = v; pivot = i; }}
            }}
            if (pivot != k) {{
                for (int j = 0; j < {n}; j = j + 1) {{
                    float t = a[k * {n} + j];
                    a[k * {n} + j] = a[pivot * {n} + j];
                    a[pivot * {n} + j] = t;
                }}
            }}
            for (int i = k + 1; i < {n}; i = i + 1) {{
                float m = a[i * {n} + k] / a[k * {n} + k];
                a[i * {n} + k] = m;
                for (int j = k + 1; j < {n}; j = j + 1) {{
                    a[i * {n} + j] = a[i * {n} + j] - m * a[k * {n} + j];
                }}
            }}
        }}
        float trace = 0.0;
        for (int i = 0; i < {n}; i = i + 1) {{
            trace = trace + a[i * {n} + i];
        }}
        print_int(ftoi(trace * 1000.0));
        exit();
    }}
    """


#: Kernel name -> source builder with the default (scaled) problem size.
SCIMARK_KERNELS = {
    "fft": lambda: _fft_source(n=64, iterations=2),
    "sor": lambda: _sor_source(n=16, iterations=6),
    "mc": lambda: _mc_source(samples=4000),
    "smm": lambda: _smm_source(n=32, nonzeros_per_row=4, iterations=20),
    "lu": lambda: _lu_source(n=14),
}


def kernel_source(name: str, **params) -> str:
    """Source of one kernel; pass size parameters to override defaults."""
    builders = {
        "fft": _fft_source,
        "sor": _sor_source,
        "mc": _mc_source,
        "smm": _smm_source,
        "lu": _lu_source,
    }
    if name not in builders:
        raise ReproError(f"unknown kernel '{name}'; known: "
                         f"{sorted(builders)}")
    if params:
        return builders[name](**params)
    return SCIMARK_KERNELS[name]()


def build_kernel_program(name: str, **params):
    """Compile one kernel to a runnable program."""
    from repro.apps import compile_app

    return compile_app(kernel_source(name, **params))

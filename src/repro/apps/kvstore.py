"""A key-value store guest: the paper's "long-running service" shape.

The motivating scenarios of the paper (§1, §2.1) are network services —
web servers, cloud workloads — whose outputs' timing a remote party wants
to verify.  Alongside the mini-NFS server, this guest exercises a
different service profile: small requests, in-memory state that persists
*across* requests (an open-addressing hash table written in MiniJ), and
response times that depend on the table's load factor — i.e. on the whole
request history, which is exactly the property that makes prediction
hopeless and replay necessary.

Protocol (1 byte per element):

* ``[OP_PUT, key, value]``  → ``[1, key, value]``
* ``[OP_GET, key]``         → ``[found, key, value]``
* ``[OP_SHUTDOWN]``         → server exits
"""

from __future__ import annotations

from repro.determinism import SplitMix64
from repro.machine.workload import InteractiveClient, Request

OP_PUT = 1
OP_GET = 2
OP_SHUTDOWN = 255

KV_SHUTDOWN = bytes([OP_SHUTDOWN])

#: Hash-table capacity (open addressing, linear probing).
TABLE_SIZE = 251


def kvstore_server_source() -> str:
    """MiniJ source of the key-value server."""
    return f"""
    // Key-value store with an open-addressing hash table.
    global int[] keys;
    global int[] values;
    global int[] used;
    global int stored;

    int slot_for(int key) {{
        int slot = (key * 2654435761) % {TABLE_SIZE};
        if (slot < 0) {{ slot += {TABLE_SIZE}; }}
        while (used[slot] == 1 && keys[slot] != key) {{
            slot = (slot + 1) % {TABLE_SIZE};
        }}
        return slot;
    }}

    int put(int key, int value) {{
        if (stored >= {TABLE_SIZE} - 1) {{ return 0; }}  // table full
        int slot = slot_for(key);
        if (used[slot] == 0) {{
            used[slot] = 1;
            keys[slot] = key;
            stored += 1;
        }}
        values[slot] = value;
        return 1;
    }}

    int get(int key, int[] out) {{
        int slot = slot_for(key);
        if (used[slot] == 1 && keys[slot] == key) {{
            out[0] = values[slot];
            return 1;
        }}
        out[0] = 0;
        return 0;
    }}

    void main() {{
        keys = new int[{TABLE_SIZE}];
        values = new int[{TABLE_SIZE}];
        used = new int[{TABLE_SIZE}];
        int[] request = new int[128];
        int[] response = new int[8];
        int[] out = new int[1];
        while (true) {{
            int n = wait_packet(request);
            if (n < 0) {{ break; }}
            if (request[0] == {OP_SHUTDOWN}) {{ break; }}
            if (request[0] == {OP_PUT} && n >= 3) {{
                response[0] = put(request[1], request[2]);
                response[1] = request[1];
                response[2] = request[2];
            }} else {{
                if (request[0] == {OP_GET} && n >= 2) {{
                    response[0] = get(request[1], out);
                    response[1] = request[1];
                    response[2] = out[0];
                }} else {{
                    response[0] = 0;
                    response[1] = 0;
                    response[2] = 0;
                }}
            }}
            covert_delay(covert_next_delay());
            send_packet(response, 3);
        }}
        print_int(stored);
        exit();
    }}
    """


def build_kvstore_program():
    """Compile the key-value server guest."""
    from repro.apps import compile_app

    return compile_app(kvstore_server_source())


def build_kvstore_workload(rng: SplitMix64, num_requests: int = 40,
                           key_space: int = 120,
                           put_fraction: float = 0.6,
                           mean_think_cycles: float = 800_000.0
                           ) -> InteractiveClient:
    """A mixed GET/PUT client over a bounded key space."""
    if num_requests < 1:
        raise ValueError("need at least one request")
    if not 0.0 <= put_fraction <= 1.0:
        raise ValueError(f"put fraction out of range: {put_fraction}")
    requests: list[Request] = []
    for _ in range(num_requests):
        key = rng.randint(0, key_space - 1)
        if rng.random() < put_fraction:
            value = rng.randint(1, 255)
            requests.append(Request(bytes([OP_PUT, key, value])))
        else:
            requests.append(Request(bytes([OP_GET, key])))
    return InteractiveClient(requests, rng.fork("client"),
                             mean_think_cycles=mean_think_cycles,
                             shutdown_payload=KV_SHUTDOWN)

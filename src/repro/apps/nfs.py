"""The mini NFS file server guest and its client workload (§6.4, §6.6).

Stand-in for the paper's ``nfsj``: a request-driven file server whose
responses' timing is the covert channel's carrier.

Protocol (1 byte per array element):

* request: ``[OP_READ, file_id, chunk_index]`` — read one 4 kB chunk;
* request: ``[OP_SHUTDOWN]`` — end of workload (lets the server's accept
  loop exit deterministically in both play and replay);
* response: ``[file_id, chunk_index, checksum, payload...]``.

The server reads the chunk from (simulated, padded) storage, does
file-size-proportional processing work — larger files cost more per
chunk, which gives legitimate traffic its per-file service levels — and
then invokes the ``covert_delay``/``covert_next_delay`` primitives before
transmitting, exactly as the paper instrumented nfsj (§6.6).
"""

from __future__ import annotations

from repro.determinism import SplitMix64
from repro.machine.workload import InteractiveClient, Request

OP_READ = 1
OP_SHUTDOWN = 255

NFS_SHUTDOWN = bytes([OP_SHUTDOWN])

#: File working set: file_id k has size k kB ("30 files with sizes
#: between 1kB and 30kB", §6.6), read in 4 kB chunks.
NUM_FILES = 30
CHUNK_KB = 4
#: Per-chunk processing loop iterations per kB of file size.
WORK_PER_KB = 60
#: Per-chunk compute-kernel cycles per kB of file size (0.3 ms/kB at
#: 3.4 GHz) — the size-dependent service level that matches the
#: calibrated :class:`~repro.analysis.experiment.NfsTrafficModel`.
SERVICE_CYCLES_PER_KB = 1_020_000
#: Response payload bytes included per chunk.
RESPONSE_PAYLOAD_BYTES = 48
#: Request wire size: 3 opcode/argument bytes + RPC/XDR-style header
#: padding, matching real NFS READ call sizes (~100 bytes).
REQUEST_BYTES = 96


def chunks_for_file(file_id: int) -> int:
    """Number of chunks a read of ``file_id`` (size = id kB) takes."""
    if not 1 <= file_id <= NUM_FILES:
        raise ValueError(f"file id out of range: {file_id}")
    return max(1, -(-file_id // CHUNK_KB))


def nfs_server_source() -> str:
    """MiniJ source of the server."""
    return f"""
    // Mini NFS server: serve chunk reads until shutdown.
    global int requests_served;
    global int busy_time;

    int process_chunk(int file_id, int[] data, int words) {{
        // File-size-proportional work: checksum passes over the chunk.
        int passes = 1 + (file_id * {WORK_PER_KB}) / 64;
        int checksum = 0;
        for (int p = 0; p < passes; p = p + 1) {{
            for (int i = 0; i < words; i = i + 1) {{
                checksum = (checksum + data[i]) % 255;
            }}
        }}
        return checksum;
    }}

    void main() {{
        int[] request = new int[64];
        int[] chunk = new int[64];
        int[] response = new int[{3 + RESPONSE_PAYLOAD_BYTES}];
        while (true) {{
            int n = wait_packet(request);
            if (n < 0) {{ break; }}
            if (request[0] == {OP_SHUTDOWN}) {{ break; }}
            if (n < 3 || request[0] != {OP_READ}) {{ continue; }}
            // Timestamp the request (the nano_time entries of §6.5).
            int started = nano_time();
            int file_id = request[1];
            int chunk_index = request[2];
            int block = file_id * 32 + chunk_index;
            int words = storage_read(block, chunk);
            int checksum = process_chunk(file_id, chunk, words);
            // Size-dependent compute kernel (encryption/compression of
            // the chunk in the context of its file).
            busy_cycles(file_id * {SERVICE_CYCLES_PER_KB});
            response[0] = file_id;
            response[1] = chunk_index;
            response[2] = checksum;
            for (int i = 0; i < {RESPONSE_PAYLOAD_BYTES}; i = i + 1) {{
                response[3 + i] = chunk[i % words] % 256;
            }}
            requests_served = requests_served + 1;
            busy_time = busy_time + (nano_time() - started);
            covert_delay(covert_next_delay());
            send_packet(response, {3 + RESPONSE_PAYLOAD_BYTES});
        }}
        print_int(requests_served);
        exit();
    }}
    """


def build_nfs_program():
    """Compile the server guest."""
    from repro.apps import compile_app

    return compile_app(nfs_server_source())


def build_nfs_workload(rng: SplitMix64, num_requests: int = 60,
                       jitter_model="east-coast",
                       one_way_delay_cycles: int = 17_000_000,
                       mean_think_cycles: float = 1_000_000.0
                       ) -> InteractiveClient:
    """A client that reads randomly-chosen files chunk by chunk.

    ``num_requests`` counts chunk reads (= response packets); files are
    drawn uniformly from the working set and read fully, mirroring the
    synthetic :class:`~repro.analysis.experiment.NfsTrafficModel` so VM
    traces and synthetic traces share their statistical structure.
    """
    if num_requests < 1:
        raise ValueError("need at least one request")
    if jitter_model == "east-coast":
        from repro.net.jitter import EAST_COAST_JITTER

        jitter_model = EAST_COAST_JITTER
    requests: list[Request] = []
    header_padding = bytes(REQUEST_BYTES - 3)
    while len(requests) < num_requests:
        file_id = rng.randint(1, NUM_FILES)
        for chunk_index in range(chunks_for_file(file_id)):
            if len(requests) >= num_requests:
                break
            requests.append(Request(bytes([OP_READ, file_id, chunk_index])
                                    + header_padding))
    return InteractiveClient(
        requests, rng.fork("client"),
        jitter_model=jitter_model,
        one_way_delay_cycles=one_way_delay_cycles,
        mean_think_cycles=mean_think_cycles,
        shutdown_payload=NFS_SHUTDOWN)

"""The array-zeroing microbenchmark of §2.4 (Figure 2).

"we performed a simple experiment in which we measured the time it took
to zero out a 4 MB array."  The guest allocates one int array and writes
zero to every element; the elements are 8-byte words, so the default of
65,536 elements is a 512 kB sweep — scaled down from the paper's 4 MB to
keep the simulated cache model fast, while still far exceeding the
simulated L1+L2 so the sweep exercises DRAM exactly like the original.
"""

from __future__ import annotations


def zero_array_source(elements: int = 65_536, passes: int = 1) -> str:
    """MiniJ source that zeroes an ``elements``-word array ``passes`` times."""
    if elements <= 0 or passes <= 0:
        raise ValueError("elements and passes must be positive")
    return f"""
    // Zero out an array ({elements} words, {passes} pass(es)).
    void main() {{
        int[] data = new int[{elements}];
        for (int p = 0; p < {passes}; p = p + 1) {{
            for (int i = 0; i < {elements}; i = i + 1) {{
                data[i] = 0;
            }}
        }}
        print_int(len(data));
        exit();
    }}
    """
